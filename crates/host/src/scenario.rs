//! The unified scenario layer: **one trait, one registry, one report
//! schema** for every experiment the simulator runs.
//!
//! The paper's evaluation — and everything this reproduction grew beyond it
//! — is a matrix of *scenarios*: a declarative description of a machine and
//! a sweep, executed under every translation-coherence mechanism, yielding
//! labelled rows of metrics.  Before this module each experiment family
//! invented its own `*Params`/`*Row` structs, its own `run()` free function
//! and its own JSON shape; adding a scenario meant wiring five call sites.
//! Now adding a scenario is implementing [`Scenario`] and adding one line
//! to [`registry`]:
//!
//! * [`Scale`] replaces the ad-hoc warmup/measured/accesses knobs each
//!   runner used to duplicate: `Smoke` (seconds, for tests and CI), `Bench`
//!   (the committed-baseline scale the `BENCH_*.json` trajectories are
//!   recorded at) and `Full` (longer steady state).
//! * [`Params`] is an ordered key→value map of the scenario's tunable
//!   sizing, serialisable and overridable from the `scenarios` CLI; unknown
//!   keys are rejected with a typed [`ConfigError`].
//! * [`ScenarioReport`] is the one output schema: labelled
//!   `(config, mechanism) → metrics` [`Row`]s whose JSON form is exactly
//!   the `BENCH_*.json` format the benches have always committed — the
//!   migration onto this API left the baselines byte-identical.
//!
//! ```
//! use hatric_host::scenario::{find, Params, Scale};
//!
//! let scenario = find("multivm").expect("multivm is registered");
//! let report = scenario
//!     .run(&Params::new(), Scale::Smoke)
//!     .expect("default parameters are valid");
//! assert!(!report.rows.is_empty());
//! assert_eq!(report.scenario, "multivm");
//! ```

use hatric::experiments::{
    execute_traced, fig10, fig11, fig2, fig7, fig8, fig9, xen, ExperimentParams, RunSpec,
};
use hatric::metrics::HostReport;
use hatric::telemetry::{global_phase_totals, CounterTimeline, EnginePhase};
use hatric::{PagingKnobs, WorkloadKind};
use hatric_cluster::PlacementPolicy;
use hatric_coherence::CoherenceMechanism;
use hatric_hypervisor::{NumaPolicy, SchedPolicy};
use hatric_types::ConfigError;

use crate::config::HostConfig;
use crate::experiments::{
    cluster_churn, cluster_faults, host_scale, migration_storm, multivm, numa_contention,
    ClusterChurnParams, ClusterFaultsParams, HostScaleParams, MigrationStormParams, MultiVmParams,
    NumaContentionParams,
};
use crate::host::ConsolidatedHost;

// ---------------------------------------------------------------------------
// Scale
// ---------------------------------------------------------------------------

/// How big a scenario run is.  One knob replaces the per-runner
/// warmup/measured/accesses triplets: every scenario maps each scale to a
/// concrete sizing via its `default_params`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale sizing for tests and CI smoke runs.
    Smoke,
    /// The committed-baseline scale: exactly what the `BENCH_*.json`
    /// trajectory files are recorded at and `bench_check` re-runs.
    Bench,
    /// Longer steady state than [`Scale::Bench`] (double the warmup and
    /// measured phases) for when noise matters more than wall clock.
    Full,
}

impl Scale {
    /// Parses a CLI scale label.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "smoke" => Some(Scale::Smoke),
            "bench" => Some(Scale::Bench),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The CLI label of this scale.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Bench => "bench",
            Scale::Full => "full",
        }
    }
}

// ---------------------------------------------------------------------------
// Params
// ---------------------------------------------------------------------------

/// An ordered key→value parameter map: the declarative, serialisable form
/// of a scenario's sizing.  Scenarios publish their full key set via
/// [`Scenario::default_params`]; callers override a subset (CLI
/// `--set key=value`), and unknown keys fail with
/// [`ConfigError::UnknownParam`] instead of being silently ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Params {
    entries: Vec<(String, String)>,
}

impl Params {
    /// An empty parameter set (every key falls back to the scenario's
    /// default at the requested scale).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, replacing an existing entry in place so key
    /// order stays stable.
    pub fn set(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some(entry) => entry.1 = value,
            None => self.entries.push((key.to_string(), value)),
        }
    }

    /// Builder-style [`Params::set`].
    #[must_use]
    pub fn with(mut self, key: &str, value: impl ToString) -> Self {
        self.set(key, value);
        self
    }

    /// Looks up a key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(String, String)] {
        &self.entries
    }

    /// Overlays `overrides` onto `self`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownParam`] if an override key is not part
    /// of this parameter set — every scenario pre-populates its full key
    /// set, so an unknown key is a typo, not a new knob.
    pub fn apply(&mut self, overrides: &Params) -> Result<(), ConfigError> {
        for (key, value) in &overrides.entries {
            if self.get(key).is_none() {
                return Err(ConfigError::UnknownParam { key: key.clone() });
            }
            self.set(key, value);
        }
        Ok(())
    }

    /// Parses `key` as a `u64`.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownParam`] if the key is absent,
    /// [`ConfigError::BadValue`] if it does not parse.
    pub fn u64(&self, key: &str) -> Result<u64, ConfigError> {
        self.parsed(key)
    }

    /// Parses `key` as a `usize`.
    ///
    /// # Errors
    ///
    /// As for [`Params::u64`].
    pub fn usize(&self, key: &str) -> Result<usize, ConfigError> {
        self.parsed(key)
    }

    /// Parses `key` as an `f64`.
    ///
    /// # Errors
    ///
    /// As for [`Params::u64`].
    pub fn f64(&self, key: &str) -> Result<f64, ConfigError> {
        self.parsed(key)
    }

    /// Parses `key` as a `u32`.
    ///
    /// # Errors
    ///
    /// As for [`Params::u64`].
    pub fn u32(&self, key: &str) -> Result<u32, ConfigError> {
        self.parsed(key)
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ConfigError> {
        let value = self.get(key).ok_or_else(|| ConfigError::UnknownParam {
            key: key.to_string(),
        })?;
        value.parse().map_err(|_| ConfigError::BadValue {
            key: key.to_string(),
            value: value.to_string(),
        })
    }

    /// Serialises the parameters as one flat JSON object with string
    /// values (the same minimal dialect [`parse_json_records`] reads back).
    #[must_use]
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .entries
            .iter()
            .map(|(k, v)| format!("\"{k}\":\"{v}\""))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// Parses a parameter set back out of [`Params::to_json`] output.
    /// Returns `None` if the text contains no object.
    #[must_use]
    pub fn from_json(text: &str) -> Option<Self> {
        let records = parse_json_records(text);
        let entries = records.into_iter().next()?;
        Some(Self { entries })
    }
}

// ---------------------------------------------------------------------------
// Metric / Row / ScenarioReport
// ---------------------------------------------------------------------------

/// One metric value in a report row.  The JSON rendering is fixed per
/// variant — counts print bare, ratios with six decimals — so regenerated
/// baselines stay byte-identical run to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A textual label.
    Text(String),
    /// An integral count (cycles, remaps, IPIs…).
    Count(u64),
    /// A real-valued ratio (slowdowns, locality fractions…), rendered with
    /// six decimal places.
    Ratio(f64),
}

impl Metric {
    /// The numeric value, if this metric is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Metric::Text(_) => None,
            Metric::Count(v) => Some(*v as f64),
            Metric::Ratio(v) => Some(*v),
        }
    }

    fn render_json(&self) -> String {
        match self {
            Metric::Text(v) => format!("\"{v}\""),
            Metric::Count(v) => format!("{v}"),
            Metric::Ratio(v) => format!("{v:.6}"),
        }
    }

    fn render_plain(&self) -> String {
        match self {
            Metric::Text(v) => v.clone(),
            Metric::Count(v) => format!("{v}"),
            Metric::Ratio(v) => format!("{v:.6}"),
        }
    }
}

/// One labelled `(config, mechanism) → metrics` row of a scenario report.
///
/// The first field is the scenario's configuration label under its
/// scenario-specific key (`pressure`, `scenario`, `config`, …), the second
/// is always `mechanism`; metric fields follow in insertion order.  The
/// JSON form is exactly one `BENCH_*.json` record.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    fields: Vec<(String, Metric)>,
}

impl Row {
    /// A row labelled `label` (under `label_key`) for `mechanism`.
    #[must_use]
    pub fn new(label_key: &str, label: &str, mechanism: &str) -> Self {
        Self {
            fields: vec![
                (label_key.to_string(), Metric::Text(label.to_string())),
                ("mechanism".to_string(), Metric::Text(mechanism.to_string())),
            ],
        }
    }

    /// Appends an integral metric.
    #[must_use]
    pub fn count(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), Metric::Count(value)));
        self
    }

    /// Appends a textual metric (beyond the label and mechanism fields the
    /// constructor installs — e.g. an attribution column naming a remap).
    #[must_use]
    pub fn text(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), Metric::Text(value.to_string())));
        self
    }

    /// Appends a ratio metric.
    #[must_use]
    pub fn ratio(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), Metric::Ratio(value)));
        self
    }

    /// The key the configuration label is stored under.
    #[must_use]
    pub fn label_key(&self) -> &str {
        &self.fields[0].0
    }

    /// The configuration label (sweep point) of this row.
    #[must_use]
    pub fn label(&self) -> &str {
        match &self.fields[0].1 {
            Metric::Text(v) => v,
            _ => unreachable!("row labels are always text"),
        }
    }

    /// The translation-coherence mechanism of this row.
    #[must_use]
    pub fn mechanism(&self) -> &str {
        match &self.fields[1].1 {
            Metric::Text(v) => v,
            _ => unreachable!("mechanisms are always text"),
        }
    }

    /// Looks up a metric by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Metric> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up a numeric metric by key.
    #[must_use]
    pub fn number(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Metric::as_f64)
    }

    /// All fields in order (label, mechanism, then metrics).
    #[must_use]
    pub fn fields(&self) -> &[(String, Metric)] {
        &self.fields
    }

    /// This row as one flat JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\":{}", v.render_json()))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

/// The uniform outcome of any scenario run: the scenario's name plus its
/// labelled rows.  [`ScenarioReport::to_json`] is the *exact* array format
/// every `BENCH_*.json` trajectory file has always used, so regenerating a
/// baseline through this API is byte-identical to the legacy writers.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Registry name of the scenario that produced the rows.
    pub scenario: String,
    /// One row per (configuration label, mechanism).
    pub rows: Vec<Row>,
}

impl ScenarioReport {
    /// An empty report for `scenario`.
    #[must_use]
    pub fn new(scenario: &str) -> Self {
        Self {
            scenario: scenario.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Finds the row for a (label, mechanism) pair.
    #[must_use]
    pub fn find(&self, label: &str, mechanism: &str) -> Option<&Row> {
        self.rows
            .iter()
            .find(|r| r.label() == label && r.mechanism() == mechanism)
    }

    /// The distinct configuration labels, in first-appearance order.
    #[must_use]
    pub fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for row in &self.rows {
            if !labels.contains(&row.label()) {
                labels.push(row.label());
            }
        }
        labels
    }

    /// Serialises the rows as the `BENCH_*.json` array format (two-space
    /// indented records, one per line, trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("  {}", r.to_json()))
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// Parses a report back out of [`ScenarioReport::to_json`] output.
    /// Values that were quoted come back as [`Metric::Text`]; bare integers
    /// as [`Metric::Count`]; anything else numeric as [`Metric::Ratio`] —
    /// so `to_json → from_json → to_json` is byte-stable.  Returns `None`
    /// if no records parse or a record does not have the row shape (a
    /// textual label followed by a textual `mechanism` field).  A trailing
    /// `"meta"` environment record (what [`bench_meta_json`] renders and
    /// the JSON writers append) is skipped, not parsed as a row.
    #[must_use]
    pub fn from_json(scenario: &str, text: &str) -> Option<Self> {
        let mut rows = Vec::new();
        for record in parse_typed_records(text) {
            if record.first().is_some_and(|(key, _)| key == "meta") {
                continue;
            }
            let has_row_shape = record.len() >= 2
                && matches!(record[0].1, Metric::Text(_))
                && record[1].0 == "mechanism"
                && matches!(record[1].1, Metric::Text(_));
            if !has_row_shape {
                return None;
            }
            rows.push(Row { fields: record });
        }
        if rows.is_empty() {
            return None;
        }
        Some(Self {
            scenario: scenario.to_string(),
            rows,
        })
    }

    /// Formats the report as an aligned text table (header = field keys of
    /// the first row, one line per row; rows missing a metric print `-`).
    #[must_use]
    pub fn format_table(&self) -> String {
        let mut keys: Vec<&str> = Vec::new();
        for row in &self.rows {
            for (key, _) in &row.fields {
                if !keys.iter().any(|k| k == key) {
                    keys.push(key);
                }
            }
        }
        let mut cells: Vec<Vec<String>> = vec![keys.iter().map(ToString::to_string).collect()];
        for row in &self.rows {
            cells.push(
                keys.iter()
                    .map(|k| {
                        row.get(k)
                            .map_or_else(|| "-".to_string(), Metric::render_plain)
                    })
                    .collect(),
            );
        }
        let widths: Vec<usize> = keys
            .iter()
            .enumerate()
            .map(|(i, _)| cells.iter().map(|r| r[i].len()).max().unwrap_or(0))
            .collect();
        let mut out = format!("scenario: {}\n", self.scenario);
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .zip(widths.iter().copied())
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect();
            out.push_str(line.join("  ").trim_end());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// JSON record parsing (shared with the bench harness)
// ---------------------------------------------------------------------------

/// Parses the flat JSON record arrays this workspace emits (arrays of
/// objects whose values are strings or numbers — no nesting, no escapes)
/// into one key→value map per record.  The build environment has no
/// `serde_json`, and callers only read files this same code wrote, so a
/// minimal parser is the honest tool.
///
/// Unparseable input yields an empty vector rather than an error: the
/// bench regression gate treats that as "no baseline".
#[must_use]
pub fn parse_json_records(text: &str) -> Vec<Vec<(String, String)>> {
    parse_records_with(text, |_, value| value.trim_matches('"').to_string())
}

/// Like [`parse_json_records`] but keeps the value type: quoted values come
/// back as [`Metric::Text`], bare integers as [`Metric::Count`], other
/// numerics as [`Metric::Ratio`].
fn parse_typed_records(text: &str) -> Vec<Vec<(String, Metric)>> {
    parse_records_with(text, |_, value| {
        if value.starts_with('"') {
            Metric::Text(value.trim_matches('"').to_string())
        } else if let Ok(count) = value.parse::<u64>() {
            Metric::Count(count)
        } else if let Ok(ratio) = value.parse::<f64>() {
            Metric::Ratio(ratio)
        } else {
            Metric::Text(value.to_string())
        }
    })
}

fn parse_records_with<T>(
    text: &str,
    mut convert: impl FnMut(&str, &str) -> T,
) -> Vec<Vec<(String, T)>> {
    let mut records = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let body = &rest[open + 1..open + close];
        let mut fields = Vec::new();
        for pair in body.split(',') {
            let Some((key, value)) = pair.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            if !key.is_empty() {
                fields.push((key.to_string(), convert(key, value)));
            }
        }
        records.push(fields);
        rest = &rest[open + close + 1..];
    }
    records
}

/// Looks up `key` in a record parsed by [`parse_json_records`].
#[must_use]
pub fn record_field<'a>(record: &'a [(String, String)], key: &str) -> Option<&'a str> {
    record
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

// ---------------------------------------------------------------------------
// The Scenario trait and registry
// ---------------------------------------------------------------------------

/// One experiment, as a uniform, registry-discoverable unit: a name, a
/// one-line claim, a declarative parameter set per [`Scale`], and a runner
/// that yields a [`ScenarioReport`].
pub trait Scenario: Sync {
    /// Registry name (what `scenarios run <name>` takes).
    fn name(&self) -> &'static str;

    /// The one-line claim this scenario demonstrates.
    fn describe(&self) -> &'static str;

    /// The full parameter set at `scale` — every key this scenario accepts,
    /// with its default value.  Overrides outside this key set are rejected
    /// by [`Scenario::run`].
    fn default_params(&self, scale: Scale) -> Params;

    /// Runs the scenario with `params` overlaid on the defaults at `scale`.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] for unknown/unparseable parameter
    /// overrides or a parameter combination that fails host validation.
    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError>;

    /// Runs **one representative traced configuration** of this scenario
    /// (with `params` overlaid on the defaults at `scale`) and returns the
    /// Chrome trace-event JSON — what `scenarios run <name> --trace out.json`
    /// writes.  The default is `None` for scenarios with nothing to trace;
    /// every registered scenario overrides it (host scenarios through their
    /// [`ConsolidatedHost`], figure scenarios through the single-VM
    /// [`hatric::System`]).
    ///
    /// Scenarios trace a single sweep point under one mechanism (software
    /// shootdowns where the sweep includes them, for the richest remap →
    /// IPI fan-out → ack lifecycles) rather than re-running the whole
    /// matrix: a trace is a magnifying glass, not a report.
    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let _ = (params, scale);
        None
    }

    /// Runs **one representative configuration** with the commit-barrier
    /// counter sampler enabled and returns its [`CounterTimeline`] — what
    /// `scenarios run <name> --timeline out.json` exports as Chrome counter
    /// events plus a CSV sibling.  The default is `None`: the sampler hooks
    /// the consolidated host's commit barrier, so scenarios built on the
    /// single-VM [`hatric::System`] (`fig2`, `fig7`, `fig8`, `fig9`,
    /// `fig10`, `xen`) have no timeline to sample.
    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let _ = (params, scale);
        None
    }

    /// Stem of this scenario's committed baseline trajectory
    /// (`BENCH_<stem>.json` at the workspace root), or `None` if the
    /// scenario has no committed baseline.
    fn baseline_stem(&self) -> Option<&'static str> {
        None
    }

    /// Row metrics the `bench_check` CI gate compares against the committed
    /// baseline (smaller-is-better semantics).  Empty means ungated.
    fn gated_metrics(&self) -> &'static [&'static str] {
        &[]
    }
}

/// Every registered scenario, in presentation order.
#[must_use]
pub fn registry() -> &'static [&'static dyn Scenario] {
    const REGISTRY: &[&'static dyn Scenario] = &[
        &MultivmScenario,
        &MigrationStormScenario,
        &NumaContentionScenario,
        &HostScaleScenario,
        &ClusterChurnScenario,
        &ClusterFaultsScenario,
        &Fig2Scenario,
        &Fig7Scenario,
        &Fig8Scenario,
        &Fig9Scenario,
        &Fig10Scenario,
        &Fig11Scenario,
        &XenScenario,
    ];
    REGISTRY
}

/// Finds a scenario by registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Scenario> {
    registry().iter().copied().find(|s| s.name() == name)
}

/// The registry as the markdown table the README's scenario catalog embeds
/// (what `scenarios --list --md` prints); a test diffs the README block
/// against this output so the two cannot drift.
#[must_use]
pub fn catalog_markdown() -> String {
    let mut out = String::from("| scenario | baseline JSON | claim |\n|---|---|---|\n");
    for scenario in registry() {
        let baseline = scenario
            .baseline_stem()
            .map_or_else(|| "—".to_string(), |stem| format!("`BENCH_{stem}.json`"));
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            scenario.name(),
            baseline,
            scenario.describe()
        ));
    }
    out
}

/// Resolves the effective parameters of a scenario run: the scenario's
/// defaults at `scale` with `overrides` applied.
///
/// # Errors
///
/// Returns [`ConfigError::UnknownParam`] for override keys the scenario
/// does not accept.
pub fn resolve_params(
    scenario: &dyn Scenario,
    overrides: &Params,
    scale: Scale,
) -> Result<Params, ConfigError> {
    let mut params = scenario.default_params(scale);
    params.apply(overrides)?;
    Ok(params)
}

fn mechanism_label(mechanism: CoherenceMechanism) -> String {
    format!("{mechanism:?}")
}

// ---------------------------------------------------------------------------
// Shared row plumbing, tracing and bench metadata
// ---------------------------------------------------------------------------

/// Appends the row tail every host scenario shares: the machine-dependent
/// wall-clock columns (`elapsed_ms`, `accesses_per_sec` — never gated,
/// stripped by the determinism cross-checks), the deterministic
/// latency-distribution percentiles the run accumulated — p50/p99, in
/// simulated cycles, of nested-walk latency, shootdown completion latency
/// and DRAM queueing delay — and the per-remap causal-attribution columns
/// ([`attribution_columns`]).  One helper instead of four hand-rolled
/// copies keeps the column set identical across scenarios.
fn timing_columns(row: Row, report: &HostReport, elapsed_ms: f64, accesses_per_sec: f64) -> Row {
    let lat = &report.host.latency;
    let timed = row
        .ratio("elapsed_ms", elapsed_ms)
        .ratio("accesses_per_sec", accesses_per_sec)
        .count("walk_p50", lat.walk.p50())
        .count("walk_p99", lat.walk.p99())
        .count("shootdown_p50", lat.shootdown.p50())
        .count("shootdown_p99", lat.shootdown.p99())
        .count("dram_queue_p50", lat.dram_queue.p50())
        .count("dram_queue_p99", lat.dram_queue.p99());
    attribution_columns(timed, report)
}

/// Appends the per-remap causal-attribution columns (never gated): how many
/// distinct remaps the run's causal ledger charged disruption to, the summed
/// victim cycles they inflicted, and the single costliest remap — its id
/// (`vm<slot>#<ordinal>`), its victim cycles and its share of the total.
/// Deterministic like every model metric, but new columns stay out of the
/// gate so committed baselines never need regenerating for observability.
fn attribution_columns(row: Row, report: &HostReport) -> Row {
    let causal = &report.host.causal;
    let total = causal.total();
    let top = causal.top_by_victim_cycles(1);
    let (top_id, top_cycles) = top.first().map_or_else(
        || ("-".to_string(), 0),
        |(id, c)| (id.to_string(), c.victim_cycles),
    );
    let top_share = if total.victim_cycles == 0 {
        0.0
    } else {
        top_cycles as f64 / total.victim_cycles as f64
    };
    row.count("attr_remaps", causal.len() as u64)
        .count("attr_victim_cycles", total.victim_cycles)
        .text("attr_top_remap", &top_id)
        .count("attr_top_victim_cycles", top_cycles)
        .ratio("attr_top_share", top_share)
}

/// Spans a traced scenario run keeps before the ring starts evicting the
/// oldest.  Sized for a bench-scale run; smoke traces fit with room to
/// spare.
const TRACE_CAPACITY: usize = 1 << 16;

/// Runs `config` with sim-time tracing enabled and returns the Chrome
/// trace-event JSON document ([`Scenario::trace_run`]'s workhorse).
fn traced_host_run(config: HostConfig, warmup: u64, measured: u64) -> Result<String, ConfigError> {
    config.validate()?;
    let mut host = ConsolidatedHost::new(config).expect("the configuration was just validated");
    host.enable_tracing(TRACE_CAPACITY);
    host.run(warmup, measured);
    Ok(host.export_trace().expect("tracing was enabled above"))
}

/// Samples a timeline run targets roughly this many points across its
/// measured phase, independent of scale — enough resolution to see phase
/// structure, few enough that the export stays small.
const TIMELINE_TARGET_SAMPLES: u64 = 256;

/// Runs `config` with commit-barrier counter sampling enabled and returns
/// the recorded timeline ([`Scenario::timeline_run`]'s workhorse).  The
/// warmup phase is sampled too, then discarded with the other warmup
/// measurements, so the timeline covers exactly the measured slices.
fn timeline_host_run(
    config: HostConfig,
    warmup: u64,
    measured: u64,
) -> Result<CounterTimeline, ConfigError> {
    config.validate()?;
    let mut host = ConsolidatedHost::new(config).expect("the configuration was just validated");
    host.enable_timeline((measured / TIMELINE_TARGET_SAMPLES).max(1));
    host.run(warmup, measured);
    Ok(host
        .timeline()
        .expect("the timeline was enabled above")
        .clone())
}

/// Runs one traced single-VM figure configuration and returns the Chrome
/// trace-event JSON (the [`Scenario::trace_run`] workhorse of the figure
/// scenarios, mirroring [`traced_host_run`] for [`hatric::System`] runs).
fn traced_system_run(spec: &RunSpec, params: &ExperimentParams) -> String {
    let (_report, trace) = execute_traced(spec, params, TRACE_CAPACITY);
    trace
}

/// Renders the ungated environment-metadata record the JSON writers append
/// after a report's rows: host parallelism, the run's worker-thread count
/// (when the scenario has one) and the wall-clock totals the slice engine
/// has spent in each phase so far in this process.  The record's first key
/// is `"meta"`, which [`ScenarioReport::from_json`] and the bench gates
/// skip — every value here is machine-dependent and must never gate.
#[must_use]
pub fn bench_meta_json(threads: Option<u64>) -> String {
    let nproc = std::thread::available_parallelism().map_or(0, |n| n.get() as u64);
    let totals = global_phase_totals();
    let mut out = format!("{{\"meta\":\"env\",\"nproc\":{nproc}");
    if let Some(threads) = threads {
        out.push_str(&format!(",\"threads\":{threads}"));
    }
    for phase in EnginePhase::ALL {
        out.push_str(&format!(
            ",\"phase_{}_ms\":{:.6}",
            phase.label(),
            totals.millis(phase)
        ));
    }
    out.push_str(&format!(",\"slices\":{}}}", totals.slices()));
    out
}

/// Splices a flat `meta` record (e.g. [`bench_meta_json`] output) into a
/// [`ScenarioReport::to_json`] document as its trailing record.  Applied
/// only at the writer layer — `scenarios run --json` and the bench
/// baseline writer — so `Scenario::run` output itself stays byte-identical
/// with and without metadata.
#[must_use]
pub fn append_meta_record(json: &str, meta: &str) -> String {
    match json.rfind("\n]") {
        Some(pos) => format!("{},\n  {meta}{}", &json[..pos], &json[pos..]),
        None => json.to_string(),
    }
}

// ---------------------------------------------------------------------------
// multivm
// ---------------------------------------------------------------------------

/// The consolidated-host interference scenario (`multivm`): one
/// paging-heavy aggressor next to remap-free victims, swept over the
/// aggressor's paging pressure.
pub struct MultivmScenario;

/// The aggressor pressure sweep: the machine and the victims stay fixed
/// while the aggressor's footprint-to-quota ratio grows.
const PRESSURE_SWEEP: [(&str, f64); 3] = [("mild", 0.4), ("moderate", 1.0), ("severe", 2.0)];

impl MultivmScenario {
    fn base(scale: Scale) -> MultiVmParams {
        match scale {
            Scale::Smoke => MultiVmParams::quick(),
            Scale::Bench => MultiVmParams::default_scale(),
            Scale::Full => {
                let mut p = MultiVmParams::default_scale();
                p.warmup_slices *= 2;
                p.measured_slices *= 2;
                p
            }
        }
    }

    fn typed(params: &Params) -> Result<MultiVmParams, ConfigError> {
        Ok(MultiVmParams {
            num_pcpus: params.usize("num_pcpus")?,
            fast_pages: params.u64("fast_pages")?,
            aggressor_vcpus: params.usize("aggressor_vcpus")?,
            victims: params.usize("victims")?,
            victim_vcpus: params.usize("victim_vcpus")?,
            warmup_slices: params.u64("warmup_slices")?,
            measured_slices: params.u64("measured_slices")?,
            slice_accesses: params.u64("slice_accesses")?,
            sched: SchedPolicy::RoundRobin,
            seed: params.u64("seed")?,
            threads: params.usize("threads")?,
            engine: params.parsed("engine")?,
            aggressor_footprint_factor: 1.0,
        })
    }
}

impl Scenario for MultivmScenario {
    fn name(&self) -> &'static str {
        "multivm"
    }

    fn describe(&self) -> &'static str {
        "one VM's remap storm steals cycles from co-located victims only under \
         software shootdowns"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let base = Self::base(scale);
        Params::new()
            .with("num_pcpus", base.num_pcpus)
            .with("fast_pages", base.fast_pages)
            .with("aggressor_vcpus", base.aggressor_vcpus)
            .with("victims", base.victims)
            .with("victim_vcpus", base.victim_vcpus)
            .with("warmup_slices", base.warmup_slices)
            .with("measured_slices", base.measured_slices)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
            .with("threads", base.threads)
            .with("engine", base.engine)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = Self::typed(&merged)?;
        // Validate every sweep point up front so a bad parameter
        // combination surfaces as a typed error, not a panic mid-sweep.
        for (_, factor) in PRESSURE_SWEEP {
            base.with_aggressor_footprint_factor(factor)
                .host_config(CoherenceMechanism::Software)
                .validate()?;
        }
        let mut report = ScenarioReport::new(self.name());
        for (pressure, factor) in PRESSURE_SWEEP {
            let rows = multivm::run(&base.with_aggressor_footprint_factor(factor));
            for row in &rows {
                let built = Row::new("pressure", pressure, &mechanism_label(row.mechanism))
                    .ratio("victim_slowdown_vs_ideal", row.victim_slowdown_vs_ideal)
                    .count("victim_disrupted_cycles", row.victim_disrupted_cycles)
                    .count("aggressor_remaps", row.aggressor_remaps)
                    .count("ipis", row.report.host.coherence.ipis)
                    .count(
                        "coherence_vm_exits",
                        row.report.host.coherence.coherence_vm_exits,
                    )
                    .count("host_runtime_cycles", row.report.host.runtime_cycles());
                report.push(timing_columns(
                    built,
                    &row.report,
                    row.elapsed_ms,
                    row.accesses_per_sec,
                ));
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The severe sweep point under software shootdowns: the
                // most remap traffic the scenario generates.
                let point = base.with_aggressor_footprint_factor(2.0);
                traced_host_run(
                    point.host_config(CoherenceMechanism::Software),
                    point.warmup_slices,
                    point.measured_slices,
                )
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The same severe software point the trace magnifies.
                let point = base.with_aggressor_footprint_factor(2.0);
                timeline_host_run(
                    point.host_config(CoherenceMechanism::Software),
                    point.warmup_slices,
                    point.measured_slices,
                )
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("multivm")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &["victim_slowdown_vs_ideal"]
    }
}

// ---------------------------------------------------------------------------
// migration_storm
// ---------------------------------------------------------------------------

/// The live-migration remap-storm scenario (`migration_storm`): a plain
/// pre-copy storm, a slow-link variant and a concurrent balloon, each under
/// every mechanism.
pub struct MigrationStormScenario;

impl MigrationStormScenario {
    fn base(scale: Scale) -> MigrationStormParams {
        match scale {
            Scale::Smoke => MigrationStormParams::quick(),
            Scale::Bench => MigrationStormParams::default_scale(),
            Scale::Full => {
                let mut p = MigrationStormParams::default_scale();
                p.warmup_slices *= 2;
                p.measured_slices *= 2;
                p
            }
        }
    }

    /// Balloon size of the `with_balloon` sweep point.  At bench scale 300
    /// pages squeeze victim 1 well below its ~307-page footprint, producing
    /// a sustained post-balloon remap storm; the smoke host is a quarter
    /// the size, so the balloon shrinks with it.
    fn balloon_pages(scale: Scale) -> u64 {
        match scale {
            Scale::Smoke => 64,
            Scale::Bench | Scale::Full => 300,
        }
    }

    fn typed(params: &Params) -> Result<MigrationStormParams, ConfigError> {
        Ok(MigrationStormParams {
            num_pcpus: params.usize("num_pcpus")?,
            fast_pages: params.u64("fast_pages")?,
            migrant_vcpus: params.usize("migrant_vcpus")?,
            victims: params.usize("victims")?,
            victim_vcpus: params.usize("victim_vcpus")?,
            warmup_slices: params.u64("warmup_slices")?,
            measured_slices: params.u64("measured_slices")?,
            slice_accesses: params.u64("slice_accesses")?,
            sched: SchedPolicy::RoundRobin,
            seed: params.u64("seed")?,
            threads: params.usize("threads")?,
            engine: params.parsed("engine")?,
            copy_pages_per_slice: params.u64("copy_pages_per_slice")?,
            dirty_page_threshold: params.u64("dirty_page_threshold")?,
            max_rounds: params.u32("max_rounds")?,
            page_copy_cycles: params.u64("page_copy_cycles")?,
            balloon_pages: 0,
        })
    }
}

impl Scenario for MigrationStormScenario {
    fn name(&self) -> &'static str {
        "migration_storm"
    }

    fn describe(&self) -> &'static str {
        "live-migration downtime and bystander slowdown collapse under HATRIC"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let base = Self::base(scale);
        Params::new()
            .with("num_pcpus", base.num_pcpus)
            .with("fast_pages", base.fast_pages)
            .with("migrant_vcpus", base.migrant_vcpus)
            .with("victims", base.victims)
            .with("victim_vcpus", base.victim_vcpus)
            .with("warmup_slices", base.warmup_slices)
            .with("measured_slices", base.measured_slices)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
            .with("copy_pages_per_slice", base.copy_pages_per_slice)
            .with("dirty_page_threshold", base.dirty_page_threshold)
            .with("max_rounds", base.max_rounds)
            .with("page_copy_cycles", base.page_copy_cycles)
            .with("threads", base.threads)
            .with("engine", base.engine)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = Self::typed(&merged)?;
        // The sweep the `migration_downtime` bench committed as its
        // baseline: plain pre-copy, a slow-link variant (more rounds,
        // bigger residue) and a migration with a concurrent balloon.
        let sweep = [
            ("precopy", base),
            ("slow_link", base.with_copy_pages_per_slice(24)),
            (
                "with_balloon",
                base.with_balloon_pages(Self::balloon_pages(scale)),
            ),
        ];
        // Validate every sweep point up front so a bad parameter
        // combination surfaces as a typed error, not a panic mid-sweep.
        for (_, point) in &sweep {
            point.host_config(CoherenceMechanism::Software).validate()?;
        }
        let mut report = ScenarioReport::new(self.name());
        for (label, point) in sweep {
            let rows = migration_storm::run(&point);
            for row in &rows {
                let built = Row::new("scenario", label, &mechanism_label(row.mechanism))
                    .count("downtime_cycles", row.downtime_cycles)
                    .ratio("victim_slowdown_vs_ideal", row.victim_slowdown_vs_ideal)
                    .count("victim_disrupted_cycles", row.victim_disrupted_cycles)
                    .count("migration_remaps", row.migration_remaps)
                    .count("precopy_rounds", row.precopy_rounds)
                    .count("pages_copied", row.pages_copied)
                    .count("host_runtime_cycles", row.report.host.runtime_cycles());
                report.push(timing_columns(
                    built,
                    &row.report,
                    row.elapsed_ms,
                    row.accesses_per_sec,
                ));
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The plain pre-copy storm under software shootdowns: the
                // full lifecycle — write-protect remap fan-outs each round,
                // then the stop-and-copy downtime burst — in one track set.
                traced_host_run(
                    base.host_config(CoherenceMechanism::Software),
                    base.warmup_slices,
                    base.measured_slices,
                )
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The plain pre-copy storm under software shootdowns: the
                // dirty-page gauge drains round by round while the
                // shootdown-target gauge spikes with each write-protect
                // fan-out.
                timeline_host_run(
                    base.host_config(CoherenceMechanism::Software),
                    base.warmup_slices,
                    base.measured_slices,
                )
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("migration")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &["victim_slowdown_vs_ideal", "downtime_cycles"]
    }
}

// ---------------------------------------------------------------------------
// numa_contention
// ---------------------------------------------------------------------------

/// The NUMA socket-sweep scenario (`numa_contention`): capacity and CPU
/// count fixed, socket count — and with it the remote-access ratio — rises,
/// plus a socket-affine counterpoint configuration.
pub struct NumaContentionScenario;

impl NumaContentionScenario {
    fn base(scale: Scale) -> NumaContentionParams {
        match scale {
            Scale::Smoke => NumaContentionParams::quick(),
            Scale::Bench => NumaContentionParams::default_scale(),
            Scale::Full => {
                let mut p = NumaContentionParams::default_scale();
                p.warmup_slices *= 2;
                p.measured_slices *= 2;
                p
            }
        }
    }

    fn typed(params: &Params) -> Result<NumaContentionParams, ConfigError> {
        Ok(NumaContentionParams {
            num_pcpus: params.usize("num_pcpus")?,
            sockets: 1,
            fast_pages: params.u64("fast_pages")?,
            aggressor_vcpus: params.usize("aggressor_vcpus")?,
            victims: params.usize("victims")?,
            victim_vcpus: params.usize("victim_vcpus")?,
            warmup_slices: params.u64("warmup_slices")?,
            measured_slices: params.u64("measured_slices")?,
            slice_accesses: params.u64("slice_accesses")?,
            numa_policy: NumaPolicy::Interleaved,
            sched: SchedPolicy::RoundRobin,
            seed: params.u64("seed")?,
            threads: params.usize("threads")?,
            engine: params.parsed("engine")?,
            aggressor_footprint_factor: params.f64("aggressor_footprint_factor")?,
        })
    }
}

impl Scenario for NumaContentionScenario {
    fn name(&self) -> &'static str {
        "numa_contention"
    }

    fn describe(&self) -> &'static str {
        "HATRIC's victim-slowdown advantage widens as the remote-socket access \
         ratio rises"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let base = Self::base(scale);
        Params::new()
            .with("num_pcpus", base.num_pcpus)
            .with("fast_pages", base.fast_pages)
            .with("aggressor_vcpus", base.aggressor_vcpus)
            .with("victims", base.victims)
            .with("victim_vcpus", base.victim_vcpus)
            .with("warmup_slices", base.warmup_slices)
            .with("measured_slices", base.measured_slices)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
            .with(
                "aggressor_footprint_factor",
                base.aggressor_footprint_factor,
            )
            .with("threads", base.threads)
            .with("engine", base.engine)
    }

    /// # Panics
    ///
    /// A *default-parameter* run at [`Scale::Bench`] or [`Scale::Full`]
    /// (what the bench and the `bench_check` CI gate execute) asserts the
    /// scenario's headline claim (HATRIC's victim slowdown never exceeds
    /// software's; the software-vs-HATRIC gap widens strictly monotonically
    /// across the interleaved series) and panics if a model change broke
    /// it.  Runs with parameter overrides are user-driven exploration and
    /// skip the claim check — an overridden machine is allowed to weaken
    /// the storm.
    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = Self::typed(&merged)?;
        // The socket sweep the `numa_contention` bench committed as its
        // baseline: capacity and CPU count fixed while the socket count —
        // and the interleaved remote-access ratio — rises, then a
        // socket-affine configuration clawing the software penalty back.
        let sweep = [
            ("uma", base),
            ("numa2", base.with_sockets(2)),
            ("numa4", base.with_sockets(4)),
            (
                "numa2_affine",
                base.with_sockets(2)
                    .with_numa_policy(NumaPolicy::FirstTouch)
                    .with_sched(SchedPolicy::SocketAffine),
            ),
        ];
        // Validate every sweep point up front: the multi-socket points have
        // invariants the single-socket base cannot catch (e.g. the CPU
        // count must split evenly across sockets), and a bad combination
        // must surface as a typed error, not a panic mid-sweep.
        for (_, point) in &sweep {
            point.host_config(CoherenceMechanism::Software).validate()?;
        }
        let assert_claim = scale != Scale::Smoke && params.entries().is_empty();
        let mut report = ScenarioReport::new(self.name());
        let mut interleaved_gaps: Vec<(f64, f64)> = Vec::new(); // (remote ratio, gap)
        for (label, point) in sweep {
            let rows = numa_contention::run(&point);
            if assert_claim {
                let by = |m: CoherenceMechanism| {
                    rows.iter()
                        .find(|r| r.mechanism == m)
                        .expect("run() emits every mechanism")
                };
                let software = by(CoherenceMechanism::Software);
                let hatric = by(CoherenceMechanism::Hatric);
                assert!(
                    hatric.victim_slowdown_vs_ideal <= software.victim_slowdown_vs_ideal,
                    "{label}: HATRIC victim slowdown {} exceeds software's {}",
                    hatric.victim_slowdown_vs_ideal,
                    software.victim_slowdown_vs_ideal
                );
                if label != "numa2_affine" {
                    interleaved_gaps.push((
                        software.remote_access_ratio,
                        software.victim_slowdown_vs_ideal - hatric.victim_slowdown_vs_ideal,
                    ));
                }
            }
            for row in &rows {
                let built = Row::new("config", label, &mechanism_label(row.mechanism))
                    .ratio("victim_slowdown_vs_ideal", row.victim_slowdown_vs_ideal)
                    .count("victim_disrupted_cycles", row.victim_disrupted_cycles)
                    .ratio("remote_access_ratio", row.remote_access_ratio)
                    .ratio("remote_target_ratio", row.remote_target_ratio)
                    .count("aggressor_remaps", row.aggressor_remaps)
                    .count("host_runtime_cycles", row.report.host.runtime_cycles());
                report.push(timing_columns(
                    built,
                    &row.report,
                    row.elapsed_ms,
                    row.accesses_per_sec,
                ));
            }
        }
        if assert_claim {
            assert!(
                interleaved_gaps.windows(2).all(|w| w[0].0 < w[1].0),
                "remote-access ratio must rise across the interleaved series: \
                 {interleaved_gaps:?}"
            );
            assert!(
                interleaved_gaps.windows(2).all(|w| w[0].1 < w[1].1),
                "the software-vs-HATRIC gap must widen monotonically with the \
                 remote-access ratio: {interleaved_gaps:?}"
            );
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The two-socket interleaved point under software
                // shootdowns: cross-socket invalidation acks dominate.
                let point = base.with_sockets(2);
                traced_host_run(
                    point.host_config(CoherenceMechanism::Software),
                    point.warmup_slices,
                    point.measured_slices,
                )
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The same two-socket interleaved software point the trace
                // magnifies.
                let point = base.with_sockets(2);
                timeline_host_run(
                    point.host_config(CoherenceMechanism::Software),
                    point.warmup_slices,
                    point.measured_slices,
                )
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("numa")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &["victim_slowdown_vs_ideal"]
    }
}

// ---------------------------------------------------------------------------
// host_scale
// ---------------------------------------------------------------------------

/// The simulator-throughput scaling scenario (`host_scale`): one HATRIC
/// host swept over total vCPUs × slice-engine threads.  Model metrics are
/// bit-identical across thread counts (the engine's determinism
/// contract, cross-checked by `bench_check`); the timing columns record
/// the wall-clock speedup multithreading buys on the running machine.
pub struct HostScaleScenario;

impl HostScaleScenario {
    fn base(scale: Scale) -> HostScaleParams {
        match scale {
            Scale::Smoke => HostScaleParams::quick(),
            Scale::Bench => HostScaleParams::default_scale(),
            Scale::Full => {
                let mut p = HostScaleParams::default_scale();
                p.warmup_slices *= 2;
                p.measured_slices *= 2;
                p
            }
        }
    }

    fn typed(params: &Params) -> Result<HostScaleParams, ConfigError> {
        Ok(HostScaleParams {
            vcpus_min: params.usize("vcpus_min")?,
            vcpus_max: params.usize("vcpus_max")?,
            threads_max: params.usize("threads_max")?,
            fast_pages_per_vcpu: params.u64("fast_pages_per_vcpu")?,
            warmup_slices: params.u64("warmup_slices")?,
            measured_slices: params.u64("measured_slices")?,
            slice_accesses: params.u64("slice_accesses")?,
            seed: params.u64("seed")?,
        })
    }
}

impl Scenario for HostScaleScenario {
    fn name(&self) -> &'static str {
        "host_scale"
    }

    fn describe(&self) -> &'static str {
        "the phased slice engine is bit-deterministic across thread counts \
         and scales simulator throughput with them"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let base = Self::base(scale);
        Params::new()
            .with("vcpus_min", base.vcpus_min)
            .with("vcpus_max", base.vcpus_max)
            .with("threads_max", base.threads_max)
            .with("fast_pages_per_vcpu", base.fast_pages_per_vcpu)
            .with("warmup_slices", base.warmup_slices)
            .with("measured_slices", base.measured_slices)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = Self::typed(&merged)?;
        for vcpus in base.vcpu_points() {
            base.host_config(vcpus, 1).validate()?;
        }
        let mut report = ScenarioReport::new(self.name());
        for row in host_scale::run(&base) {
            let built = Row::new(
                "config",
                &format!("v{}_t{}", row.vcpus, row.threads),
                "Hatric",
            )
            .count("vcpus", row.vcpus as u64)
            .count("threads", row.threads as u64)
            .count("host_runtime_cycles", row.report.host.runtime_cycles())
            .count("accesses", row.report.host.accesses)
            .count("aggressor_remaps", row.report.per_vm[0].coherence.remaps)
            .count(
                "host_disrupted_cycles",
                row.report.host.interference.disrupted_cycles,
            );
            // Each point also ran under the message-passing engine (its
            // report asserted equal inside `host_scale::run`); its wall
            // clock lands in ungated side-by-side timing columns.
            let timed = timing_columns(built, &row.report, row.elapsed_ms, row.accesses_per_sec)
                .ratio("mp_elapsed_ms", row.mp_elapsed_ms)
                .ratio("mp_accesses_per_sec", row.mp_accesses_per_sec);
            report.push(timed);
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The largest machine at the full thread count: one traced
                // run showing the HATRIC host the sweep peaks at.
                let vcpus = base.vcpus_max;
                traced_host_run(
                    base.host_config(vcpus, base.threads_max),
                    base.warmup_slices,
                    base.measured_slices,
                )
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                // The same peak machine the trace magnifies.
                let vcpus = base.vcpus_max;
                timeline_host_run(
                    base.host_config(vcpus, base.threads_max),
                    base.warmup_slices,
                    base.measured_slices,
                )
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("scale")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &["host_runtime_cycles"]
    }
}

// ---------------------------------------------------------------------------
// cluster_churn
// ---------------------------------------------------------------------------

/// The datacenter-tier scenario (`cluster_churn`): a fleet of consolidated
/// hosts under concurrent inter-host pre-copy migrations and VM
/// arrival/departure churn, swept over the concurrent-migration count.
pub struct ClusterChurnScenario;

/// The concurrent-migration sweep: the fleet stays fixed while the number
/// of simultaneously in-flight inter-host migrations grows.
const MIGRATION_SWEEP: [(&str, usize); 3] = [("mig1", 1), ("mig2", 2), ("mig4", 4)];

impl ClusterChurnScenario {
    fn base(scale: Scale) -> ClusterChurnParams {
        match scale {
            Scale::Smoke => ClusterChurnParams::quick(),
            Scale::Bench => ClusterChurnParams::default_scale(),
            Scale::Full => {
                let mut p = ClusterChurnParams::default_scale();
                p.warmup_epochs *= 2;
                p.measured_epochs *= 2;
                p
            }
        }
    }

    fn typed(params: &Params) -> Result<ClusterChurnParams, ConfigError> {
        let policy_label = params
            .get("policy")
            .ok_or_else(|| ConfigError::UnknownParam {
                key: "policy".to_string(),
            })?;
        let policy = PlacementPolicy::parse(policy_label).map_err(|_| ConfigError::BadValue {
            key: "policy".to_string(),
            value: policy_label.to_string(),
        })?;
        Ok(ClusterChurnParams {
            hosts: params.usize("hosts")?,
            num_pcpus: params.usize("num_pcpus")?,
            fast_pages: params.u64("fast_pages")?,
            active_vms: params.usize("active_vms")?,
            spare_slots: params.usize("spare_slots")?,
            vm_vcpus: params.usize("vm_vcpus")?,
            epoch_slices: params.u64("epoch_slices")?,
            warmup_epochs: params.u64("warmup_epochs")?,
            measured_epochs: params.u64("measured_epochs")?,
            slice_accesses: params.u64("slice_accesses")?,
            seed: params.u64("seed")?,
            threads: params.usize("threads")?,
            engine: params.parsed("engine")?,
            churn_period: params.u64("churn_period")?,
            copy_pages_per_slice: params.u64("copy_pages_per_slice")?,
            throttle_after_rounds: params.u32("throttle_after_rounds")?,
            policy,
        })
    }

    /// Validates a sizing without building the fleet (slot-count and
    /// capacity invariants surface as typed errors, not panics).
    fn validate(base: &ClusterChurnParams) -> Result<(), ConfigError> {
        for host in 0..base.hosts {
            base.host_config(host, CoherenceMechanism::Software)
                .validate()?;
        }
        Ok(())
    }
}

impl Scenario for ClusterChurnScenario {
    fn name(&self) -> &'static str {
        "cluster_churn"
    }

    fn describe(&self) -> &'static str {
        "HATRIC keeps fleet-wide victim slowdown and p99 migration downtime \
         bounded under concurrent inter-host migrations; software degrades \
         with every added migration"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let base = Self::base(scale);
        Params::new()
            .with("hosts", base.hosts)
            .with("num_pcpus", base.num_pcpus)
            .with("fast_pages", base.fast_pages)
            .with("active_vms", base.active_vms)
            .with("spare_slots", base.spare_slots)
            .with("vm_vcpus", base.vm_vcpus)
            .with("epoch_slices", base.epoch_slices)
            .with("warmup_epochs", base.warmup_epochs)
            .with("measured_epochs", base.measured_epochs)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
            .with("churn_period", base.churn_period)
            .with("copy_pages_per_slice", base.copy_pages_per_slice)
            .with("throttle_after_rounds", base.throttle_after_rounds)
            .with("policy", base.policy.label())
            .with("threads", base.threads)
            .with("engine", base.engine)
    }

    /// # Panics
    ///
    /// A *default-parameter* run at [`Scale::Bench`] or [`Scale::Full`]
    /// asserts the scenario's headline claim — every scheduled migration
    /// completes; HATRIC's aggregate victim slowdown and downtime p99
    /// never exceed software's at any concurrency; software's victim
    /// slowdown degrades strictly monotonically with the
    /// concurrent-migration count — and panics if a model change broke
    /// it.  Runs with parameter overrides skip the claim check.
    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = Self::typed(&merged)?;
        Self::validate(&base)?;
        let assert_claim = scale != Scale::Smoke && params.entries().is_empty();
        let mut report = ScenarioReport::new(self.name());
        let mut software_slowdowns = Vec::new();
        for (label, migrations) in MIGRATION_SWEEP {
            let rows = cluster_churn::run(&base, migrations.min(base.hosts));
            if assert_claim {
                let by = |m: CoherenceMechanism| {
                    rows.iter()
                        .find(|r| r.mechanism == m)
                        .expect("run() emits every mechanism")
                };
                let software = by(CoherenceMechanism::Software);
                let hatric = by(CoherenceMechanism::Hatric);
                for row in &rows {
                    assert!(
                        row.report.completed_migrations() >= migrations as u64,
                        "{label}/{:?}: only {} of {migrations} scheduled migrations handed off",
                        row.mechanism,
                        row.report.completed_migrations()
                    );
                }
                assert!(
                    hatric.agg_victim_slowdown_vs_ideal <= software.agg_victim_slowdown_vs_ideal,
                    "{label}: HATRIC victim slowdown {} exceeds software's {}",
                    hatric.agg_victim_slowdown_vs_ideal,
                    software.agg_victim_slowdown_vs_ideal
                );
                assert!(
                    hatric.downtime_p99_cycles <= software.downtime_p99_cycles,
                    "{label}: HATRIC downtime p99 {} exceeds software's {}",
                    hatric.downtime_p99_cycles,
                    software.downtime_p99_cycles
                );
                software_slowdowns.push(software.agg_victim_slowdown_vs_ideal);
            }
            for row in &rows {
                let built = Row::new("config", label, &mechanism_label(row.mechanism))
                    .ratio(
                        "agg_victim_slowdown_vs_ideal",
                        row.agg_victim_slowdown_vs_ideal,
                    )
                    .count("downtime_p99_cycles", row.downtime_p99_cycles)
                    .count("downtime_max_cycles", row.downtime_max_cycles)
                    .count("migrations_completed", row.report.completed_migrations())
                    .count("peak_inflight", row.report.peak_inflight)
                    .count("victim_disrupted_cycles", row.victim_disrupted_cycles)
                    .count("migration_remaps", row.report.migration.migration_remaps)
                    .count("received_pages", row.report.migration.received_pages)
                    .count(
                        "postcopy_fetched_pages",
                        row.report.migration.postcopy_fetched_pages,
                    )
                    .count("throttled_slices", row.report.migration.throttled_slices)
                    .count("pages_copied", row.report.migration.pages_copied)
                    .count(
                        "cluster_runtime_cycles",
                        row.report.aggregate.runtime_cycles(),
                    );
                // The timing/latency/attribution tail rides on a host-shaped
                // view of the fleet aggregate, so the column set matches the
                // other host scenarios exactly.
                let fleet_view = HostReport {
                    per_vm: Vec::new(),
                    host: row.report.aggregate.clone(),
                    migration: row.report.migration,
                };
                report.push(timing_columns(
                    built,
                    &fleet_view,
                    row.elapsed_ms,
                    row.accesses_per_sec,
                ));
            }
        }
        if assert_claim {
            assert!(
                software_slowdowns.windows(2).all(|w| w[0] < w[1]),
                "software victim slowdown must degrade monotonically with the \
                 concurrent-migration count: {software_slowdowns:?}"
            );
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                Self::validate(&base)?;
                // The four-migration software point: page streams land on
                // every host's hypervisor track, one trace process per host.
                let mut cluster =
                    base.build_cluster(CoherenceMechanism::Software, 4.min(base.hosts));
                cluster.enable_tracing(TRACE_CAPACITY);
                cluster.run(base.warmup_epochs, base.measured_epochs);
                Ok(cluster.export_trace().expect("tracing was enabled above"))
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|base| {
                Self::validate(&base)?;
                // The same four-migration software point, sampled at epoch
                // granularity: in-flight migrations, fleet activity and
                // per-host load.
                let mut cluster =
                    base.build_cluster(CoherenceMechanism::Software, 4.min(base.hosts));
                cluster.enable_timeline((base.measured_epochs / 64).max(1));
                cluster.run(base.warmup_epochs, base.measured_epochs);
                Ok(cluster
                    .timeline()
                    .expect("the timeline was enabled above")
                    .clone())
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("cluster")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &["agg_victim_slowdown_vs_ideal", "downtime_p99_cycles"]
    }
}

/// The cluster-faults scenario (`cluster_faults`): the churn fleet under a
/// deterministic fault storm — an engineered host crash that aborts two
/// in-flight migrations (one with a bounded retry), a stuck pre-copy that
/// force-escalates to post-copy, crash-driven cold restarts through the
/// placement policy, and a seeded background schedule of link and DRAM
/// faults.  Gated claim: under the identical storm, HATRIC's aggregate
/// victim slowdown and recovery-downtime p99 never exceed software's.
pub struct ClusterFaultsScenario;

impl ClusterFaultsScenario {
    fn base(scale: Scale) -> ClusterFaultsParams {
        match scale {
            Scale::Smoke => ClusterFaultsParams::quick(),
            Scale::Bench => ClusterFaultsParams::default_scale(),
            Scale::Full => {
                let mut p = ClusterFaultsParams::default_scale();
                p.base.warmup_epochs *= 2;
                p.base.measured_epochs *= 2;
                p
            }
        }
    }

    fn typed(params: &Params) -> Result<ClusterFaultsParams, ConfigError> {
        Ok(ClusterFaultsParams {
            base: ClusterChurnScenario::typed(params)?,
            fault_seed: params.u64("fault_seed")?,
            fault_period: params.u64("fault_period")?,
            crash_after_epochs: params.u64("crash_after_epochs")?,
            stall_epochs: params.u64("stall_epochs")?,
            stall_timeout_epochs: params.u64("stall_timeout_epochs")?,
            max_retries: params.u32("max_retries")?,
            retry_backoff_epochs: params.u64("retry_backoff_epochs")?,
            restart_penalty_cycles: params.u64("restart_penalty_cycles")?,
        })
    }

    /// Validates a sizing without building the fleet.
    fn validate(params: &ClusterFaultsParams) -> Result<(), ConfigError> {
        if params.base.hosts < 4 {
            return Err(ConfigError::BadValue {
                key: "hosts".to_string(),
                value: format!(
                    "{} (the engineered fault storm needs at least four hosts)",
                    params.base.hosts
                ),
            });
        }
        ClusterChurnScenario::validate(&params.base)
    }
}

impl Scenario for ClusterFaultsScenario {
    fn name(&self) -> &'static str {
        "cluster_faults"
    }

    fn describe(&self) -> &'static str {
        "under a deterministic fault storm (host crash, migration aborts with \
         bounded retry, forced post-copy escalation, link/DRAM faults) HATRIC \
         recovers no slower than software on victim slowdown and recovery \
         downtime p99"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let p = Self::base(scale);
        let base = p.base;
        Params::new()
            .with("hosts", base.hosts)
            .with("num_pcpus", base.num_pcpus)
            .with("fast_pages", base.fast_pages)
            .with("active_vms", base.active_vms)
            .with("spare_slots", base.spare_slots)
            .with("vm_vcpus", base.vm_vcpus)
            .with("epoch_slices", base.epoch_slices)
            .with("warmup_epochs", base.warmup_epochs)
            .with("measured_epochs", base.measured_epochs)
            .with("slice_accesses", base.slice_accesses)
            .with("seed", base.seed)
            .with("churn_period", base.churn_period)
            .with("copy_pages_per_slice", base.copy_pages_per_slice)
            .with("throttle_after_rounds", base.throttle_after_rounds)
            .with("policy", base.policy.label())
            .with("threads", base.threads)
            .with("engine", base.engine)
            .with("fault_seed", p.fault_seed)
            .with("fault_period", p.fault_period)
            .with("crash_after_epochs", p.crash_after_epochs)
            .with("stall_epochs", p.stall_epochs)
            .with("stall_timeout_epochs", p.stall_timeout_epochs)
            .with("max_retries", p.max_retries)
            .with("retry_backoff_epochs", p.retry_backoff_epochs)
            .with("restart_penalty_cycles", p.restart_penalty_cycles)
    }

    /// # Panics
    ///
    /// A *default-parameter* run at [`Scale::Bench`] or [`Scale::Full`]
    /// asserts the scenario's headline claim — the engineered crash fires
    /// exactly once and aborts at least two in-flight migrations, the
    /// stuck pre-copy escalates, the dead host's VMs cold-restart, and
    /// HATRIC's victim slowdown and recovery-downtime p99 never exceed
    /// software's under the identical storm — and panics if a model
    /// change broke it.  Runs with parameter overrides skip the check.
    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let typed = Self::typed(&merged)?;
        Self::validate(&typed)?;
        let assert_claim = scale != Scale::Smoke && params.entries().is_empty();
        let rows = cluster_faults::run(&typed);
        if assert_claim {
            let by = |m: CoherenceMechanism| {
                rows.iter()
                    .find(|r| r.mechanism == m)
                    .expect("run() emits every mechanism")
            };
            let software = by(CoherenceMechanism::Software);
            let hatric = by(CoherenceMechanism::Hatric);
            for row in &rows {
                let recovery = row.report.recovery;
                assert_eq!(
                    recovery.host_crashes, 1,
                    "{:?}: exactly the engineered crash must fire",
                    row.mechanism
                );
                assert!(
                    recovery.migrations_aborted >= 2,
                    "{:?}: the crash must abort both migrations touching the \
                     dead host (got {})",
                    row.mechanism,
                    recovery.migrations_aborted
                );
                assert!(
                    recovery.migrations_escalated >= 1,
                    "{:?}: the stuck pre-copy must escalate to post-copy",
                    row.mechanism
                );
                assert!(
                    recovery.vm_restarts >= 1,
                    "{:?}: the dead host's VMs must cold-restart elsewhere",
                    row.mechanism
                );
            }
            assert!(
                hatric.agg_victim_slowdown_vs_ideal <= software.agg_victim_slowdown_vs_ideal,
                "HATRIC victim slowdown {} exceeds software's {} under faults",
                hatric.agg_victim_slowdown_vs_ideal,
                software.agg_victim_slowdown_vs_ideal
            );
            assert!(
                hatric.recovery_downtime_p99_cycles <= software.recovery_downtime_p99_cycles,
                "HATRIC recovery p99 {} exceeds software's {}",
                hatric.recovery_downtime_p99_cycles,
                software.recovery_downtime_p99_cycles
            );
        }
        let mut report = ScenarioReport::new(self.name());
        for row in &rows {
            let recovery = row.report.recovery;
            let built = Row::new("config", "storm", &mechanism_label(row.mechanism))
                .ratio(
                    "agg_victim_slowdown_vs_ideal",
                    row.agg_victim_slowdown_vs_ideal,
                )
                .count(
                    "recovery_downtime_p99_cycles",
                    row.recovery_downtime_p99_cycles,
                )
                .count(
                    "recovery_downtime_max_cycles",
                    row.recovery_downtime_max_cycles,
                )
                .count("host_crashes", recovery.host_crashes)
                .count("migrations_aborted", recovery.migrations_aborted)
                .count("migrations_retried", recovery.migrations_retried)
                .count("migrations_escalated", recovery.migrations_escalated)
                .count("vm_restarts", recovery.vm_restarts)
                .count("restarts_failed", recovery.restarts_failed)
                .count("unavailability_epochs", recovery.unavailability_epochs)
                .count("wire_dropped_pages", recovery.wire_dropped_pages)
                .count("faults_injected", recovery.faults_injected)
                .count("migrations_completed", row.report.completed_migrations())
                .count("victim_disrupted_cycles", row.victim_disrupted_cycles)
                .count("received_pages", row.report.migration.received_pages)
                .count(
                    "postcopy_fetched_pages",
                    row.report.migration.postcopy_fetched_pages,
                )
                .count("pages_copied", row.report.migration.pages_copied)
                .count(
                    "cluster_runtime_cycles",
                    row.report.aggregate.runtime_cycles(),
                );
            let fleet_view = HostReport {
                per_vm: Vec::new(),
                host: row.report.aggregate.clone(),
                migration: row.report.migration,
            };
            report.push(timing_columns(
                built,
                &fleet_view,
                row.elapsed_ms,
                row.accesses_per_sec,
            ));
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|typed| {
                Self::validate(&typed)?;
                // The software run: fault spans (crash, blackout, brownout,
                // stall) land on every host's hypervisor track alongside
                // the migration page streams they disrupt.
                let mut cluster = typed.build_cluster(CoherenceMechanism::Software);
                cluster.enable_tracing(TRACE_CAPACITY);
                cluster.run(typed.base.warmup_epochs, typed.base.measured_epochs);
                Ok(cluster.export_trace().expect("tracing was enabled above"))
            });
        Some(traced)
    }

    fn timeline_run(
        &self,
        params: &Params,
        scale: Scale,
    ) -> Option<Result<CounterTimeline, ConfigError>> {
        let timeline = resolve_params(self, params, scale)
            .and_then(|merged| Self::typed(&merged))
            .and_then(|typed| {
                Self::validate(&typed)?;
                // The same software run sampled at epoch granularity: the
                // in-flight count collapsing at the crash, fleet activity
                // dipping through the restart windows.
                let mut cluster = typed.build_cluster(CoherenceMechanism::Software);
                cluster.enable_timeline((typed.base.measured_epochs / 64).max(1));
                cluster.run(typed.base.warmup_epochs, typed.base.measured_epochs);
                Ok(cluster
                    .timeline()
                    .expect("the timeline was enabled above")
                    .clone())
            });
        Some(timeline)
    }

    fn baseline_stem(&self) -> Option<&'static str> {
        Some("faults")
    }

    fn gated_metrics(&self) -> &'static [&'static str] {
        &[
            "agg_victim_slowdown_vs_ideal",
            "recovery_downtime_p99_cycles",
        ]
    }
}

// ---------------------------------------------------------------------------
// Core-figure scenarios (fig9, xen)
// ---------------------------------------------------------------------------

/// The sizing the benchmark harness regenerates figure tables at: smaller
/// than [`ExperimentParams::default_scale`] so `cargo bench` stays under a
/// few minutes, larger than [`ExperimentParams::quick`] for steady state.
#[must_use]
pub fn fig_bench_params() -> ExperimentParams {
    ExperimentParams {
        vcpus: 16,
        fast_pages: 1_024,
        warmup: 1_500,
        measured: 2_500,
        seed: hatric::DEFAULT_SEED,
    }
}

fn fig_base(scale: Scale) -> ExperimentParams {
    match scale {
        Scale::Smoke => ExperimentParams::quick(),
        Scale::Bench => fig_bench_params(),
        // Same machine as Bench, longer steady state — Full numbers stay
        // comparable to the committed bench-scale figures.
        Scale::Full => {
            let mut p = fig_bench_params();
            p.warmup *= 2;
            p.measured *= 2;
            p
        }
    }
}

fn fig_default_params(scale: Scale) -> Params {
    let base = fig_base(scale);
    Params::new()
        .with("vcpus", base.vcpus)
        .with("fast_pages", base.fast_pages)
        .with("warmup", base.warmup)
        .with("measured", base.measured)
        .with("seed", base.seed)
}

fn fig_typed(params: &Params) -> Result<ExperimentParams, ConfigError> {
    Ok(ExperimentParams {
        vcpus: params.usize("vcpus")?,
        fast_pages: params.u64("fast_pages")?,
        warmup: params.u64("warmup")?,
        measured: params.u64("measured")?,
        seed: params.u64("seed")?,
    })
}

/// The Fig. 2 scenario (`fig2`): the potential of hypervisor-managed
/// die-stacked DRAM per workload — no-HBM baseline, infinite-HBM lower
/// bound, today's best paging under software coherence, and what
/// zero-overhead coherence would achieve.
pub struct Fig2Scenario;

impl Scenario for Fig2Scenario {
    fn name(&self) -> &'static str {
        "fig2"
    }

    fn describe(&self) -> &'static str {
        "software translation coherence forfeits much of die-stacked DRAM's \
         paging win (Fig. 2)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mut report = ScenarioReport::new(self.name());
        for fig_row in fig2::run(&base) {
            for (mechanism, runtime) in [
                ("NoHbm", fig_row.no_hbm),
                ("InfiniteHbm", fig_row.inf_hbm),
                ("Software", fig_row.curr_best),
                ("Ideal", fig_row.achievable),
            ] {
                report.push(
                    Row::new("config", &fig_row.workload, mechanism)
                        .ratio("runtime_vs_nohbm", runtime),
                );
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // The curr-best bar of the first workload: paged memory
                // under software shootdowns, where the figure's forfeited
                // win comes from.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Software),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Fig. 7 scenario (`fig7`): HATRIC's benefit as a function of vCPU
/// count, per workload, under software / HATRIC / ideal coherence.  The
/// paper's [`fig7::VCPU_SWEEP`] is clipped to the scenario's `vcpus`
/// parameter so smoke runs stay small.
pub struct Fig7Scenario;

impl Scenario for Fig7Scenario {
    fn name(&self) -> &'static str {
        "fig7"
    }

    fn describe(&self) -> &'static str {
        "HATRIC's benefit grows with the vCPU count (Fig. 7)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let sweep: Vec<usize> = fig7::VCPU_SWEEP
            .iter()
            .copied()
            .filter(|&vcpus| vcpus <= base.vcpus)
            .collect();
        let sweep = if sweep.is_empty() {
            vec![base.vcpus]
        } else {
            sweep
        };
        let mut report = ScenarioReport::new(self.name());
        for fig_row in fig7::run_with_sweep(&base, &sweep) {
            let label = format!("{}/v{}", fig_row.workload, fig_row.vcpus);
            for (mechanism, runtime) in [
                ("Software", fig_row.sw),
                ("Hatric", fig_row.hatric),
                ("Ideal", fig_row.ideal),
            ] {
                report
                    .push(Row::new("config", &label, mechanism).ratio("runtime_vs_nohbm", runtime));
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // The software bar at the scenario's full vCPU count: the
                // widest shootdown fan-outs of the sweep.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Software),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Fig. 8 scenario (`fig8`): HATRIC's benefit across KVM paging
/// policies (plain LRU, +migration daemon, +prefetching), per workload,
/// under software / HATRIC / ideal coherence.
pub struct Fig8Scenario;

impl Scenario for Fig8Scenario {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn describe(&self) -> &'static str {
        "HATRIC helps under every KVM paging policy, most where paging is \
         smartest (Fig. 8)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mut report = ScenarioReport::new(self.name());
        for fig_row in fig8::run(&base) {
            let label = format!("{}/{}", fig_row.workload, fig_row.policy);
            for (mechanism, runtime) in [
                ("Software", fig_row.sw),
                ("Hatric", fig_row.hatric),
                ("Ideal", fig_row.ideal),
            ] {
                report
                    .push(Row::new("config", &label, mechanism).ratio("runtime_vs_nohbm", runtime));
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // The software bar under the most sophisticated paging
                // policy (migration daemon + prefetching): the remap rate
                // the smarter policies buy their wins with.
                let knobs = PagingKnobs::fig8_sweep()[2];
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Software)
                        .with_paging(knobs),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Fig. 9 scenario (`fig9`): runtime versus translation-structure
/// sizes, per workload and size multiplier, under software / HATRIC /
/// ideal coherence.
pub struct Fig9Scenario;

impl Scenario for Fig9Scenario {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn describe(&self) -> &'static str {
        "bigger translation structures don't close the software-coherence gap \
         (Fig. 9)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mut report = ScenarioReport::new(self.name());
        for fig_row in fig9::run(&base) {
            let label = format!("{}/{}x", fig_row.workload, fig_row.scale);
            for (mechanism, runtime) in [
                ("Software", fig_row.sw),
                ("Hatric", fig_row.hatric),
                ("Ideal", fig_row.ideal),
            ] {
                report
                    .push(Row::new("config", &label, mechanism).ratio("runtime_vs_nohbm", runtime));
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // The software bar at the largest structure multiplier:
                // the flushes the figure shows bigger structures cannot
                // absorb.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Software)
                        .with_structure_scale(4),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Fig. 10 scenario (`fig10`): multiprogrammed SPEC mixes — weighted
/// (average) normalised runtime and the slowest application per mix, under
/// software coherence and HATRIC.
pub struct Fig10Scenario;

impl Scenario for Fig10Scenario {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn describe(&self) -> &'static str {
        "software coherence's imprecise targeting punishes whole SPEC mixes; \
         HATRIC fixes throughput and fairness (Fig. 10)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        let mixes = match scale {
            Scale::Smoke => 3,
            Scale::Bench => 12,
            Scale::Full => 20,
        };
        fig_default_params(scale).with("mixes", mixes)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mixes = merged.usize("mixes")?;
        let mut report = ScenarioReport::new(self.name());
        for fig_row in fig10::run(&base, mixes) {
            let label = format!("mix{}", fig_row.mix);
            for (mechanism, weighted, slowest) in [
                ("Software", fig_row.weighted_sw, fig_row.slowest_sw),
                ("Hatric", fig_row.weighted_hatric, fig_row.slowest_hatric),
            ] {
                report.push(
                    Row::new("config", &label, mechanism)
                        .ratio("weighted_runtime", weighted)
                        .ratio("slowest_runtime", slowest),
                );
            }
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // One software-coherence run standing in for a mix member:
                // the imprecise-targeting flushes the mixes suffer from.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Software),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Fig. 11 scenario (`fig11`): performance-energy trade-offs.  The
/// left-hand scatter compares HATRIC against the best software-coherence
/// configuration per workload (runtime *and* energy ratios); the
/// right-hand sweep varies the co-tag width over
/// [`fig11::COTAG_SWEEP`] (mean over the big-memory suite).
pub struct Fig11Scenario;

impl Scenario for Fig11Scenario {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn describe(&self) -> &'static str {
        "HATRIC wins performance and energy; 2-byte co-tags suffice (Fig. 11)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mut report = ScenarioReport::new(self.name());
        for point in fig11::run_scatter(&base) {
            report.push(
                Row::new("config", &point.workload, "Hatric")
                    .ratio("runtime_vs_software", point.runtime_ratio)
                    .ratio("energy_vs_software", point.energy_ratio),
            );
        }
        for cotag in fig11::run_cotag_sweep(&base) {
            let label = format!("cotag{}B", cotag.cotag_bytes);
            report.push(
                Row::new("config", &label, "Hatric")
                    .ratio("runtime_vs_software", cotag.runtime_ratio)
                    .ratio("energy_vs_software", cotag.energy_ratio),
            );
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // The paper's chosen design point: HATRIC with 2-byte
                // co-tags, whose invalidation traffic the energy model
                // charges for.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::Hatric)
                        .with_cotag_bytes(2),
                    &base,
                )
            });
        Some(traced)
    }
}

/// The Xen generality scenario (`xen`): HATRIC's improvement over Xen's
/// software translation coherence, per workload.
pub struct XenScenario;

impl Scenario for XenScenario {
    fn name(&self) -> &'static str {
        "xen"
    }

    fn describe(&self) -> &'static str {
        "the mechanism generalises from KVM to Xen (Sec. 6)"
    }

    fn default_params(&self, scale: Scale) -> Params {
        fig_default_params(scale)
    }

    fn run(&self, params: &Params, scale: Scale) -> Result<ScenarioReport, ConfigError> {
        let merged = resolve_params(self, params, scale)?;
        let base = fig_typed(&merged)?;
        let mut report = ScenarioReport::new(self.name());
        for xen_row in xen::run(&base) {
            report.push(
                Row::new("config", &xen_row.workload, "SoftwareXen")
                    .ratio("runtime_vs_sw", xen_row.sw_runtime)
                    .ratio("improvement_percent", 0.0),
            );
            report.push(
                Row::new("config", &xen_row.workload, "Hatric")
                    .ratio("runtime_vs_sw", xen_row.hatric_runtime)
                    .ratio("improvement_percent", xen_row.improvement_percent),
            );
        }
        Ok(report)
    }

    fn trace_run(&self, params: &Params, scale: Scale) -> Option<Result<String, ConfigError>> {
        let traced = resolve_params(self, params, scale)
            .and_then(|merged| fig_typed(&merged))
            .map(|base| {
                // Xen's software translation coherence on the first of the
                // paper's Xen workloads: the costlier shootdown path the
                // generality claim is measured against.
                traced_system_run(
                    &RunSpec::new(WorkloadKind::Canneal, CoherenceMechanism::SoftwareXen)
                        .with_hypervisor(hatric::HypervisorKind::Xen),
                    &base,
                )
            });
        Some(traced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_advertised_scenarios() {
        let names: Vec<&str> = registry().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "multivm",
                "migration_storm",
                "numa_contention",
                "host_scale",
                "cluster_churn",
                "cluster_faults",
                "fig2",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "fig11",
                "xen"
            ]
        );
        assert!(names.len() >= 5);
        for name in names {
            assert!(find(name).is_some());
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn params_set_get_and_override_in_order() {
        let mut params = Params::new().with("a", 1).with("b", 2);
        params.set("a", 3);
        assert_eq!(params.get("a"), Some("3"));
        assert_eq!(params.entries()[0].0, "a", "set() must keep key order");
        assert_eq!(params.u64("b").unwrap(), 2);
        assert!(matches!(
            params.u64("missing"),
            Err(ConfigError::UnknownParam { .. })
        ));
        params.set("a", "not-a-number");
        assert!(matches!(params.u64("a"), Err(ConfigError::BadValue { .. })));
    }

    #[test]
    fn unknown_override_keys_are_rejected() {
        let scenario = find("multivm").unwrap();
        let overrides = Params::new().with("no_such_knob", 1);
        let err = scenario.run(&overrides, Scale::Smoke).unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownParam {
                key: "no_such_knob".into()
            }
        );
    }

    #[test]
    fn params_json_round_trips() {
        let params = find("migration_storm")
            .unwrap()
            .default_params(Scale::Bench);
        let json = params.to_json();
        let back = Params::from_json(&json).unwrap();
        assert_eq!(back, params);
        assert_eq!(back.to_json(), json);
        assert!(Params::from_json("no object here").is_none());
    }

    #[test]
    fn rows_render_the_baseline_json_format() {
        let row = Row::new("pressure", "moderate", "Hatric")
            .ratio("victim_slowdown_vs_ideal", 1.0125)
            .count("ipis", 0);
        assert_eq!(
            row.to_json(),
            "{\"pressure\":\"moderate\",\"mechanism\":\"Hatric\",\
             \"victim_slowdown_vs_ideal\":1.012500,\"ipis\":0}"
        );
        assert_eq!(row.label_key(), "pressure");
        assert_eq!(row.label(), "moderate");
        assert_eq!(row.mechanism(), "Hatric");
        assert_eq!(row.number("ipis"), Some(0.0));
        assert_eq!(row.number("victim_slowdown_vs_ideal"), Some(1.0125));
        assert_eq!(row.number("missing"), None);
    }

    #[test]
    fn report_json_round_trips_byte_stably() {
        let mut report = ScenarioReport::new("demo");
        report.push(
            Row::new("config", "a", "Software")
                .ratio("slowdown", 1.25)
                .count("cycles", 42),
        );
        report.push(
            Row::new("config", "b", "Hatric")
                .ratio("slowdown", 1.0)
                .count("cycles", 7),
        );
        let json = report.to_json();
        let back = ScenarioReport::from_json("demo", &json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.to_json(), json);
        assert!(ScenarioReport::from_json("demo", "not json").is_none());
        // Records without the (label, mechanism) row shape are a parse
        // failure, not a latent panic in label()/mechanism().
        assert!(ScenarioReport::from_json("demo", "[{\"a\":1,\"b\":2}]").is_none());
        assert!(ScenarioReport::from_json("demo", "[{\"a\":\"x\",\"b\":\"y\"}]").is_none());
    }

    #[test]
    fn meta_record_splices_in_and_parses_back_out() {
        let mut report = ScenarioReport::new("demo");
        report.push(
            Row::new("config", "a", "Software")
                .ratio("slowdown", 1.25)
                .count("cycles", 42),
        );
        let meta = bench_meta_json(Some(4));
        assert!(meta.starts_with("{\"meta\":\"env\",\"nproc\":"));
        assert!(meta.contains("\"threads\":4"));
        assert!(meta.contains("\"phase_simulate_ms\":"));
        assert!(meta.contains("\"phase_serial_commit_ms\":"));
        assert!(meta.contains("\"slices\":"));
        let body = append_meta_record(&report.to_json(), &meta);
        assert!(body.contains(&meta), "meta record must land in the body");
        // The reader skips the trailing meta record: the parsed report is
        // exactly the rows, so gated comparisons never see the metadata.
        let back = ScenarioReport::from_json("demo", &body).unwrap();
        assert_eq!(back, report);
        // Without a threads knob the key is simply absent.
        assert!(!bench_meta_json(None).contains("\"threads\""));
        // Splicing into something that is not a report array is a no-op.
        assert_eq!(append_meta_record("not json", &meta), "not json");
    }

    #[test]
    fn every_scenario_traces_and_only_host_scenarios_sample_timelines() {
        for scenario in registry() {
            // Every registered scenario advertises a traced configuration,
            // and all of them surface the unknown-param error through it.
            assert_eq!(
                scenario
                    .trace_run(&Params::new().with("bogus", 1), Scale::Smoke)
                    .map(|r| r.is_err()),
                Some(true),
                "{}: trace_run availability/override validation",
                scenario.name()
            );
            // The counter sampler hooks the consolidated host's commit
            // barrier, so only host scenarios expose a timeline.
            let expects_timeline = !matches!(
                scenario.name(),
                "fig2" | "fig7" | "fig8" | "fig9" | "fig10" | "fig11" | "xen"
            );
            assert_eq!(
                scenario
                    .timeline_run(&Params::new().with("bogus", 1), Scale::Smoke)
                    .map(|r| r.is_err()),
                expects_timeline.then_some(true),
                "{}: timeline_run availability/override validation",
                scenario.name()
            );
        }
    }

    #[test]
    fn report_lookup_and_table() {
        let mut report = ScenarioReport::new("demo");
        report.push(Row::new("config", "a", "Software").ratio("slowdown", 1.25));
        report.push(Row::new("config", "a", "Hatric").ratio("slowdown", 1.0));
        assert_eq!(report.labels(), vec!["a"]);
        assert!(report.find("a", "Hatric").is_some());
        assert!(report.find("b", "Hatric").is_none());
        let table = report.format_table();
        assert!(table.contains("scenario: demo"));
        assert!(table.contains("slowdown"));
        assert!(table.contains("1.250000"));
    }

    #[test]
    fn scales_parse_and_label() {
        for scale in [Scale::Smoke, Scale::Bench, Scale::Full] {
            assert_eq!(Scale::parse(scale.label()), Some(scale));
        }
        assert_eq!(Scale::parse("gigantic"), None);
    }

    #[test]
    fn smoke_defaults_are_smaller_than_bench_defaults() {
        for scenario in registry() {
            let smoke = scenario.default_params(Scale::Smoke);
            let bench = scenario.default_params(Scale::Bench);
            let key = ["measured", "measured_slices", "measured_epochs"]
                .into_iter()
                .find(|k| smoke.get(k).is_some())
                .expect("every scenario sizes a measured phase");
            assert!(
                smoke.u64(key).unwrap() < bench.u64(key).unwrap(),
                "{}: smoke must be smaller than bench",
                scenario.name()
            );
        }
    }
}
