//! The run observatory: a structural diff between two scenario-report
//! JSON documents (committed `BENCH_*.json` baselines, `scenarios run
//! --json` output — they share one schema).
//!
//! `scenarios diff <run-a.json> <run-b.json>` aligns rows by
//! `(label, mechanism)`, reports a delta for every numeric metric the
//! aligned rows share, and fails when a **gated** metric drifts beyond the
//! tolerance or a row of run A has no counterpart in run B (fail-closed,
//! like the CI gate: a silently vanished row would disable part of the
//! comparison).  The `bench_check` CI gate delegates its per-scenario
//! baseline comparison to this same engine, so "what the gate enforces"
//! and "what the observatory reports" cannot drift apart.

use crate::scenario::{Row, ScenarioReport};

/// Options governing a diff.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed relative drift on a gated metric before it counts as a
    /// regression.
    pub tolerance: f64,
    /// `true` flags gated drift in either direction (two runs of equal
    /// standing, the `scenarios diff` default); `false` applies the CI
    /// gate's smaller-is-better rule, where only growth regresses and
    /// shrinking is an improvement.
    pub symmetric: bool,
    /// When `true`, only gated metrics produce deltas (the CI gate's
    /// terse mode); when `false`, every numeric metric the aligned rows
    /// share is reported.
    pub gated_only: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            tolerance: 0.10,
            symmetric: true,
            gated_only: false,
        }
    }
}

impl DiffOptions {
    /// The CI gate's configuration: one-sided smaller-is-better
    /// comparisons of the gated metrics only, at `tolerance`.
    #[must_use]
    pub fn gate(tolerance: f64) -> Self {
        Self {
            tolerance,
            symmetric: false,
            gated_only: true,
        }
    }

    fn drifted(&self, a: f64, b: f64) -> bool {
        let grew = b > a * (1.0 + self.tolerance);
        let shrank = b < a * (1.0 - self.tolerance);
        grew || (self.symmetric && shrank)
    }
}

/// One aligned metric comparison between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// `<label>/<mechanism>` of the aligned row pair.
    pub row: String,
    /// Metric key.
    pub metric: String,
    /// Run A's (baseline's) value.
    pub a: f64,
    /// Run B's (current) value.
    pub b: f64,
    /// Whether the metric is in the diff's gated set.
    pub gated: bool,
    /// Whether this delta is a gated-metric drift beyond the tolerance.
    pub regressed: bool,
}

impl MetricDelta {
    /// Relative drift in percent (0 when run A's value is 0).
    #[must_use]
    pub fn delta_percent(&self) -> f64 {
        if self.a == 0.0 {
            0.0
        } else {
            (self.b / self.a - 1.0) * 100.0
        }
    }
}

/// The outcome of diffing two scenario reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// One entry per compared metric, in run A's row order.
    pub deltas: Vec<MetricDelta>,
    /// Rows of run A absent from run B, and gated metrics a row pair does
    /// not share — either fails the diff (fail-closed).
    pub missing: Vec<String>,
    /// Rows of run B with no counterpart in run A (informational).
    pub extra: Vec<String>,
}

impl DiffReport {
    /// Number of gated metrics that drifted beyond the tolerance.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// `true` when no gated metric drifted and nothing is missing — the
    /// exit-0 condition of `scenarios diff`.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions() == 0 && self.missing.is_empty()
    }

    /// Renders the diff in the gate's verdict style: one line per delta
    /// (`REGRESSED` / `drift` / `ok`), then the missing and extra rows.
    #[must_use]
    pub fn format_text(&self) -> String {
        let mut out = String::new();
        for delta in &self.deltas {
            let verdict = if delta.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "{verdict:>9}  {:<60} a {:>14.3}  b {:>14.3}  ({:+.1}%)\n",
                format!("{} {}", delta.row, delta.metric),
                delta.a,
                delta.b,
                delta.delta_percent()
            ));
        }
        for row in &self.missing {
            out.push_str(&format!("  MISSING  {row}\n"));
        }
        for row in &self.extra {
            out.push_str(&format!("    EXTRA  {row}: only in run B\n"));
        }
        out
    }
}

fn numeric_metrics(row: &Row) -> impl Iterator<Item = (&str, f64)> {
    // The first two fields are the textual label and mechanism; any other
    // textual metric (e.g. `attr_top_remap`) has no numeric delta either.
    row.fields()
        .iter()
        .skip(2)
        .filter_map(|(key, metric)| metric.as_f64().map(|value| (key.as_str(), value)))
}

/// Diffs run B against run A: rows aligned by `(label, mechanism)`,
/// per-metric deltas for the numeric metrics both sides carry, drift
/// verdicts on `gated` metrics per `options`.
#[must_use]
pub fn diff_reports(
    a: &ScenarioReport,
    b: &ScenarioReport,
    gated: &[&str],
    options: DiffOptions,
) -> DiffReport {
    let mut report = DiffReport::default();
    for row_a in &a.rows {
        let key = format!("{}/{}", row_a.label(), row_a.mechanism());
        let Some(row_b) = b.find(row_a.label(), row_a.mechanism()) else {
            report.missing.push(format!("{key}: row absent from run B"));
            continue;
        };
        // Gated metrics are declared, so both sides of an aligned pair
        // must carry them — run A lacking one is as fail-closed as run B.
        for &metric in gated {
            if row_a.number(metric).is_none() {
                report
                    .missing
                    .push(format!("{key}: gated metric {metric} absent from run A"));
            }
        }
        for (metric, value_a) in numeric_metrics(row_a) {
            let is_gated = gated.contains(&metric);
            if options.gated_only && !is_gated {
                continue;
            }
            match row_b.number(metric) {
                Some(value_b) => report.deltas.push(MetricDelta {
                    row: key.clone(),
                    metric: metric.to_string(),
                    a: value_a,
                    b: value_b,
                    gated: is_gated,
                    regressed: is_gated && options.drifted(value_a, value_b),
                }),
                // A gated metric both runs must carry fails closed; an
                // ungated one (e.g. a column added since run A was
                // recorded) is simply not comparable.
                None if is_gated => report
                    .missing
                    .push(format!("{key}: gated metric {metric} absent from run B")),
                None => {}
            }
        }
    }
    for row_b in &b.rows {
        if a.find(row_b.label(), row_b.mechanism()).is_none() {
            report
                .extra
                .push(format!("{}/{}", row_b.label(), row_b.mechanism()));
        }
    }
    report
}

/// Parses two report documents and diffs them ([`diff_reports`] over
/// [`ScenarioReport::from_json`]).
///
/// # Errors
///
/// Returns a description of which side failed to parse as a scenario
/// report (trailing `meta` records are fine — the parser skips them).
pub fn diff_json(
    a_text: &str,
    b_text: &str,
    gated: &[&str],
    options: DiffOptions,
) -> Result<DiffReport, String> {
    let a = ScenarioReport::from_json("a", a_text)
        .ok_or("run A does not parse as a scenario report")?;
    let b = ScenarioReport::from_json("b", b_text)
        .ok_or("run B does not parse as a scenario report")?;
    Ok(diff_reports(&a, &b, gated, options))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(slowdown: f64, cycles: u64) -> ScenarioReport {
        let mut report = ScenarioReport::new("demo");
        report.push(
            Row::new("config", "a", "Software")
                .ratio("victim_slowdown_vs_ideal", slowdown)
                .count("host_runtime_cycles", cycles)
                .text("attr_top_remap", "vm0#3"),
        );
        report
    }

    const GATED: &[&str] = &["victim_slowdown_vs_ideal"];

    #[test]
    fn self_diff_passes_and_reports_every_numeric_metric() {
        let a = report(1.25, 1000);
        let diff = diff_reports(&a, &a, GATED, DiffOptions::default());
        assert!(diff.passed());
        assert_eq!(diff.regressions(), 0);
        // Both numeric metrics compared; the textual attribution column
        // has no numeric delta.
        assert_eq!(diff.deltas.len(), 2);
        assert!(diff.deltas.iter().all(|d| d.a == d.b));
        assert!(diff.format_text().contains("ok"));
    }

    #[test]
    fn gated_drift_beyond_tolerance_fails() {
        let a = report(1.0, 1000);
        let b = report(1.2, 1000);
        let diff = diff_reports(&a, &b, GATED, DiffOptions::default());
        assert_eq!(diff.regressions(), 1);
        assert!(!diff.passed());
        assert!(diff.format_text().contains("REGRESSED"));
        // Within tolerance passes.
        let close = report(1.05, 1000);
        assert!(diff_reports(&a, &close, GATED, DiffOptions::default()).passed());
        // Ungated drift never fails the diff.
        let cycles_up = report(1.0, 9000);
        assert!(diff_reports(&a, &cycles_up, GATED, DiffOptions::default()).passed());
    }

    #[test]
    fn symmetry_is_an_option() {
        let a = report(1.0, 1000);
        let improved = report(0.5, 1000);
        // The observatory flags large movement in either direction…
        assert_eq!(
            diff_reports(&a, &improved, GATED, DiffOptions::default()).regressions(),
            1
        );
        // …while the gate's smaller-is-better rule treats it as a win.
        let gate = DiffOptions::gate(0.10);
        assert!(diff_reports(&a, &improved, GATED, gate).passed());
        assert_eq!(
            diff_reports(&a, &report(1.2, 1), GATED, gate).regressions(),
            1
        );
    }

    #[test]
    fn missing_rows_fail_closed_and_extra_rows_inform() {
        let a = report(1.0, 1000);
        let mut b = report(1.0, 1000);
        b.rows[0] =
            Row::new("config", "renamed", "Software").ratio("victim_slowdown_vs_ideal", 1.0);
        let diff = diff_reports(&a, &b, GATED, DiffOptions::default());
        assert!(!diff.passed());
        assert_eq!(diff.missing.len(), 1);
        assert_eq!(diff.extra, vec!["renamed/Software"]);
        assert!(diff.format_text().contains("MISSING"));
    }

    #[test]
    fn gated_only_restricts_the_delta_set() {
        let a = report(1.0, 1000);
        let diff = diff_reports(&a, &a, GATED, DiffOptions::gate(0.10));
        assert_eq!(diff.deltas.len(), 1);
        assert_eq!(diff.deltas[0].metric, "victim_slowdown_vs_ideal");
    }

    #[test]
    fn json_round_trip_diffs_and_rejects_garbage() {
        let a = report(1.0, 1000);
        let diff = diff_json(&a.to_json(), &a.to_json(), GATED, DiffOptions::default()).unwrap();
        assert!(diff.passed());
        assert!(diff_json("not json", &a.to_json(), GATED, DiffOptions::default()).is_err());
        assert!(diff_json(&a.to_json(), "not json", GATED, DiffOptions::default()).is_err());
    }

    #[test]
    fn delta_percent_handles_zero_baselines() {
        let delta = MetricDelta {
            row: "a/Software".into(),
            metric: "cycles".into(),
            a: 0.0,
            b: 5.0,
            gated: false,
            regressed: false,
        };
        assert_eq!(delta.delta_percent(), 0.0);
    }
}
