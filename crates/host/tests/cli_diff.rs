//! The `scenarios diff` exit-code contract, exercised as real CLI
//! invocations of the built binary:
//!
//! * exit **0** — the runs align and no gated metric drifted;
//! * exit **1** — a gated metric drifted beyond the tolerance (or a row
//!   vanished), the observatory's fail-closed verdict;
//! * exit **2** — usage, IO or parse errors (missing files, bad flags).

use std::path::PathBuf;
use std::process::{Command, Output};

use hatric_host::scenario::{Row, ScenarioReport};

/// A small report in the committed `BENCH_*.json` schema, carrying
/// multivm's gated metric so `--scenario multivm` gates the diff.
fn report(slowdown: f64) -> ScenarioReport {
    let mut report = ScenarioReport::new("multivm");
    for (label, factor) in [("mild", 1.0), ("severe", 2.0)] {
        report.push(
            Row::new("pressure", label, "Software")
                .ratio("victim_slowdown_vs_ideal", slowdown * factor)
                .count("host_runtime_cycles", 100_000),
        );
    }
    report
}

/// Writes `body` to a unique temp file and returns its path.
fn temp_report(name: &str, body: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("hatric_cli_diff_{}_{name}", std::process::id()));
    std::fs::write(&path, body).expect("temp dir is writable");
    path
}

fn scenarios_diff(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .arg("diff")
        .args(args)
        .output()
        .expect("the scenarios binary runs")
}

fn exit_code(output: &Output) -> i32 {
    output.status.code().expect("the CLI exits, not signals")
}

#[test]
fn self_diff_exits_zero() {
    let a = temp_report("self_a.json", &report(1.25).to_json());
    let b = temp_report("self_b.json", &report(1.25).to_json());
    let out = scenarios_diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--scenario",
        "multivm",
    ]);
    assert_eq!(
        exit_code(&out),
        0,
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 regression(s)"), "stdout: {stdout}");
}

#[test]
fn gated_drift_exits_one() {
    let a = temp_report("drift_a.json", &report(1.0).to_json());
    // 50% drift on the gated victim_slowdown_vs_ideal, far past the
    // default 10% tolerance.
    let b = temp_report("drift_b.json", &report(1.5).to_json());
    let out = scenarios_diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--scenario",
        "multivm",
    ]);
    assert_eq!(exit_code(&out), 1);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "stdout: {stdout}");

    // A generous tolerance turns the same drift back into exit 0.
    let out = scenarios_diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--scenario",
        "multivm",
        "--tolerance",
        "0.9",
    ]);
    assert_eq!(exit_code(&out), 0);

    // A vanished row fails closed even without gated metrics.
    let mut truncated = report(1.0);
    truncated.rows.pop();
    let b = temp_report("drift_truncated.json", &truncated.to_json());
    let out = scenarios_diff(&[a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 1);
}

#[test]
fn usage_and_io_errors_exit_two() {
    let a = temp_report("usage_a.json", &report(1.0).to_json());
    // Missing file.
    let out = scenarios_diff(&[a.to_str().unwrap(), "/nonexistent/run-b.json"]);
    assert_eq!(exit_code(&out), 2);
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    // Only one report file.
    let out = scenarios_diff(&[a.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);

    // Unknown flag and unknown scenario.
    let b = temp_report("usage_b.json", &report(1.0).to_json());
    let out = scenarios_diff(&[a.to_str().unwrap(), b.to_str().unwrap(), "--bogus", "x"]);
    assert_eq!(exit_code(&out), 2);
    let out = scenarios_diff(&[
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--scenario",
        "no_such_scenario",
    ]);
    assert_eq!(exit_code(&out), 2);

    // Unparseable report body.
    let garbage = temp_report("usage_garbage.json", "not json");
    let out = scenarios_diff(&[garbage.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(exit_code(&out), 2);

    // An unknown top-level command is also usage exit 2.
    let out = Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .arg("frobnicate")
        .output()
        .expect("the scenarios binary runs");
    assert_eq!(exit_code(&out), 2);
}
