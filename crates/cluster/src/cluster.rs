//! The lockstep-epoch fleet.

use std::collections::VecDeque;

use hatric::telemetry::{merge_chrome_traces, CounterTimeline};
use hatric::WorkerPool;
use hatric_faults::{FaultClock, FaultEvent, FaultKind};
use hatric_migration::{MigrationParams, ReceiverParams};
use hatric_types::{ConfigError, SimError};

use crate::churn::{ChurnEvent, ChurnKind};
use crate::placement::PlacementPolicy;
use crate::report::{ClusterReport, MigrationOutcome, RecoveryStats, RestartOutcome};
use crate::EpochHost;

/// How an inter-host migration moves the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationMode {
    /// Iterative pre-copy on the source; the VM flips after convergence.
    PreCopy,
    /// The VM flips immediately; the destination pulls the image behind
    /// it (demand-fetched pages at critical-path cost).
    PostCopy,
}

/// An explicitly scheduled inter-host migration (scenarios use these to
/// raise a controlled migration storm; the churn stream's `Migrate`
/// events are the organic counterpart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMigration {
    /// Epoch boundary at which the migration starts.
    pub epoch: u64,
    /// Source host index.
    pub src_host: usize,
    /// Source VM slot.
    pub src_slot: usize,
    /// Operator-pinned destination host, or `None` to let the placement
    /// policy choose.  A pinned destination that is unusable at fire time
    /// (crashed, receiving, or full) drops the migration; a later *retry*
    /// always falls back to policy placement — the pin may be the very
    /// host that crashed.
    pub dst_host: Option<usize>,
    /// Pre-copy or post-copy.
    pub mode: MigrationMode,
}

/// Cluster-wide knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterParams {
    /// Scheduler slices every host runs per epoch (must be ≥ 1: hosts
    /// must advance between boundary wirings).
    pub epoch_slices: u64,
    /// Worker threads hosts are sharded over (1 = serial).
    pub threads: usize,
    /// Where arrivals and migration destinations land.
    pub policy: PlacementPolicy,
    /// Template for source-side migration engines (`vm_slot` and
    /// `start_slice` are overridden per migration).
    pub migration: MigrationParams,
    /// Template for destination-side receivers (`vm_slot` is overridden
    /// per migration).
    pub receiver: ReceiverParams,
    /// Epochs a pre-copy migration may spend without handing off before
    /// the cluster force-escalates it to a post-copy flip (the
    /// non-convergence timeout).  `0` disables escalation.
    pub stall_timeout_epochs: u64,
    /// Bounded retries for migrations aborted by a crashed *destination*
    /// (the source VM survived, so the move can be re-attempted).  `0`
    /// disables retry.
    pub max_retries: u32,
    /// Linear backoff between retry attempts: attempt `n` re-fires
    /// `retry_backoff_epochs × n` epochs after its abort (deterministic —
    /// sim-time, never wall-clock).
    pub retry_backoff_epochs: u64,
    /// Unavailability window charged to each crash-driven VM cold
    /// restart (the restart has no live state to migrate, so its
    /// downtime is a fixed re-provisioning cost, not a protocol result).
    pub restart_penalty_cycles: u64,
}

impl ClusterParams {
    /// Defaults: `epoch_slices` slices per epoch on `threads` workers,
    /// least-loaded placement, the stock migration/receiver templates,
    /// and inert fault handling (no escalation timeout, no retries) —
    /// recovery knobs only matter once faults are armed.
    #[must_use]
    pub fn new(epoch_slices: u64, threads: usize) -> Self {
        Self {
            epoch_slices,
            threads,
            policy: PlacementPolicy::LeastLoaded,
            migration: MigrationParams::at(0, 0),
            receiver: ReceiverParams::for_slot(0),
            stall_timeout_epochs: 0,
            max_retries: 0,
            retry_backoff_epochs: 1,
            restart_penalty_cycles: 50_000,
        }
    }
}

/// One inter-host migration's lifecycle, tracked at epoch boundaries.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    src_host: usize,
    src_slot: usize,
    dst_host: usize,
    dst_slot: usize,
    post_copy: bool,
    /// The VM has flipped from source to destination.
    handed_off: bool,
    /// Every page also landed on the destination (receiver finished).
    drained: bool,
    downtime_cycles: u64,
    /// Torn down by a crashed endpoint.
    aborted: bool,
    /// Force-escalated to post-copy by the non-convergence timeout.
    escalated: bool,
    /// 0 for a first try, `n` for the `n`-th bounded retry.
    attempt: u32,
    /// Epochs spent pre-copying without handing off (drives escalation).
    precopy_epochs: u64,
}

/// An aborted migration waiting out its deterministic backoff before the
/// cluster re-attempts it.
#[derive(Debug, Clone, Copy)]
struct RetryTicket {
    due_epoch: u64,
    src_host: usize,
    src_slot: usize,
    post_copy: bool,
    attempt: u32,
}

/// Gauge names for the per-host load series (bounds the fleet size a
/// timeline can label; the series are `'static` by `CounterTimeline`
/// contract).
const HOST_LOAD_SERIES: [&str; 16] = [
    "host0_load",
    "host1_load",
    "host2_load",
    "host3_load",
    "host4_load",
    "host5_load",
    "host6_load",
    "host7_load",
    "host8_load",
    "host9_load",
    "host10_load",
    "host11_load",
    "host12_load",
    "host13_load",
    "host14_load",
    "host15_load",
];

/// A fleet of consolidated hosts advanced in lockstep epochs.
///
/// Within an epoch every host runs `epoch_slices` scheduler slices in
/// complete isolation (its own platform), so hosts execute concurrently on
/// a [`WorkerPool`] — contiguous host chunks, one per worker.  All
/// cross-host coupling (page streams, hand-offs, churn, placement) runs
/// serially at the epoch boundary in deterministic order, which makes the
/// whole cluster byte-identical for any `threads` value.
#[derive(Debug)]
pub struct Cluster<H: EpochHost> {
    hosts: Vec<H>,
    params: ClusterParams,
    pool: Option<WorkerPool>,
    churn: VecDeque<ChurnEvent>,
    scheduled: VecDeque<ScheduledMigration>,
    tickets: Vec<Ticket>,
    epochs_run: u64,
    peak_inflight: u64,
    timeline: Option<CounterTimeline>,
    /// Armed fault schedule (empty when fault injection is off).
    faults: FaultClock,
    /// Hosts taken down by `HostCrash` faults (they stay down).
    crashed: Vec<bool>,
    /// Per-host link-degradation window: `(divisor, epochs_left)`.
    link_degrade: Vec<(u64, u64)>,
    /// Per-host link-blackout window: epochs left.
    link_blackout: Vec<u64>,
    /// Per-host DRAM-brownout window: `(multiplier_x100, epochs_left)`.
    brownout: Vec<(u64, u64)>,
    /// Per-host stuck-pre-copy window: epochs left.
    stall: Vec<u64>,
    /// Aborted migrations awaiting their backoff.
    retries: Vec<RetryTicket>,
    recovery: RecoveryStats,
    restarts: Vec<RestartOutcome>,
}

impl<H: EpochHost> Cluster<H> {
    /// Builds a cluster over `hosts`.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is empty, `params.epoch_slices` is 0 or
    /// `params.threads` is 0.
    #[must_use]
    pub fn new(hosts: Vec<H>, params: ClusterParams) -> Self {
        assert!(!hosts.is_empty(), "a cluster needs at least one host");
        assert!(params.epoch_slices > 0, "epochs must advance sim time");
        assert!(params.threads > 0, "the epoch loop needs a thread");
        // One chunk runs on the caller's thread; the pool only needs
        // workers for the rest (and none at all when serial).
        let extra = params.threads.min(hosts.len()).saturating_sub(1);
        let pool = (extra > 0).then(|| WorkerPool::new(extra));
        let fleet = hosts.len();
        Self {
            hosts,
            params,
            pool,
            churn: VecDeque::new(),
            scheduled: VecDeque::new(),
            tickets: Vec::new(),
            epochs_run: 0,
            peak_inflight: 0,
            timeline: None,
            faults: FaultClock::new(Vec::new()).expect("an empty schedule is ordered"),
            crashed: vec![false; fleet],
            link_degrade: vec![(1, 0); fleet],
            link_blackout: vec![0; fleet],
            brownout: vec![(100, 0); fleet],
            stall: vec![0; fleet],
            retries: Vec::new(),
            recovery: RecoveryStats::default(),
            restarts: Vec::new(),
        }
    }

    /// The hosts (for inspection).
    #[must_use]
    pub fn hosts(&self) -> &[H] {
        &self.hosts
    }

    /// Epochs executed so far (warmup included).
    #[must_use]
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run
    }

    /// Installs a churn schedule (events must be in epoch order, as
    /// [`ChurnStream::generate`](crate::ChurnStream::generate) produces).
    pub fn set_churn(&mut self, events: Vec<ChurnEvent>) {
        self.churn = events.into();
    }

    /// Schedules an explicit migration (events must be pushed in epoch
    /// order).
    pub fn schedule_migration(&mut self, migration: ScheduledMigration) {
        self.scheduled.push_back(migration);
    }

    /// Arms a fault schedule (replacing any previous one).  Events fire
    /// at epoch boundaries, before churn — so a crash resolves its
    /// migrations and restarts its VMs before placement reacts.
    ///
    /// # Errors
    ///
    /// [`ConfigError::BadFaultPlan`] when the events are out of epoch
    /// order or name a host outside the fleet.
    pub fn set_faults(&mut self, events: Vec<FaultEvent>) -> Result<(), ConfigError> {
        self.faults = FaultClock::for_fleet(events, self.hosts.len())?;
        Ok(())
    }

    /// Whether host `host` was taken down by a crash fault.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    #[must_use]
    pub fn is_crashed(&self, host: usize) -> bool {
        self.crashed[host]
    }

    /// Fleet-level recovery metrics accumulated so far.
    #[must_use]
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Deactivates slot `slot` on host `host` (spare capacity arrivals
    /// and migration destinations land in).
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn set_vm_active(&mut self, host: usize, slot: usize, active: bool) {
        self.hosts[host].set_vm_active(slot, active);
    }

    // ----- observability ----------------------------------------------------

    /// Enables sim-time tracing on every host (`capacity` spans each).
    pub fn enable_tracing(&mut self, capacity: usize) {
        for host in &mut self.hosts {
            host.enable_tracing(capacity);
        }
    }

    /// The merged Chrome trace: host `i`'s spans under process `i` (see
    /// [`merge_chrome_traces`]), or `None` when tracing is off.
    #[must_use]
    pub fn export_trace(&self) -> Option<String> {
        let sinks: Vec<_> = self
            .hosts
            .iter()
            .filter_map(EpochHost::trace_sink)
            .collect();
        (!sinks.is_empty()).then(|| merge_chrome_traces(sinks.iter().copied()))
    }

    /// Enables cluster counter-timeline sampling every `interval` epochs:
    /// in-flight migrations, cluster-wide active VMs, undelivered
    /// migration pages, and one load gauge per host.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is larger than the labelled series pool
    /// (`HOST_LOAD_SERIES` entries).
    pub fn enable_timeline(&mut self, interval: u64) {
        assert!(
            self.hosts.len() <= HOST_LOAD_SERIES.len(),
            "timeline labels exist for up to {} hosts",
            HOST_LOAD_SERIES.len()
        );
        let mut series = vec!["inflight_migrations", "active_vms", "pending_pages"];
        series.extend_from_slice(&HOST_LOAD_SERIES[..self.hosts.len()]);
        self.timeline = Some(CounterTimeline::new(interval, series));
    }

    /// The recorded cluster timeline, or `None` when sampling is off.
    #[must_use]
    pub fn timeline(&self) -> Option<&CounterTimeline> {
        self.timeline.as_ref()
    }

    fn sample_timeline(&mut self) {
        let due = self
            .timeline
            .as_ref()
            .is_some_and(|t| self.epochs_run.is_multiple_of(t.interval()));
        if !due {
            return;
        }
        let ts = self.hosts.iter().map(|h| h.sim_cycles()).max().unwrap_or(0);
        let inflight = self.tickets.iter().filter(|t| !t.drained).count() as u64;
        let active: u64 = self
            .hosts
            .iter()
            .map(|h| (0..h.vm_slots()).filter(|&s| h.vm_active(s)).count() as u64)
            .sum();
        let pending: u64 = self
            .hosts
            .iter()
            .map(|h| h.migration_pending_pages() + h.receiver_pending_pages())
            .sum();
        let mut values = vec![inflight, active, pending];
        values.extend(self.hosts.iter().map(EpochHost::active_vcpus));
        if let Some(timeline) = &mut self.timeline {
            timeline.record(ts, &values);
        }
    }

    // ----- the epoch loop ---------------------------------------------------

    /// Runs `warmup` unmeasured epochs, clears measurement state, runs
    /// `measured` epochs and returns the merged report.
    pub fn run(&mut self, warmup: u64, measured: u64) -> ClusterReport {
        self.run_epochs(warmup);
        self.reset_measurements();
        self.run_epochs(measured);
        self.report()
    }

    /// Executes `n` lockstep epochs.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            self.fire_due_faults();
            self.fire_due_events();
            self.apply_fault_state();
            self.advance_hosts();
            self.wire_migrations();
            self.recovery.unavailability_epochs +=
                self.crashed.iter().filter(|dead| **dead).count() as u64;
            self.tick_fault_windows();
            self.epochs_run += 1;
            self.sample_timeline();
        }
    }

    /// Clears measurement counters on every host (and the cluster's own
    /// gauges) while keeping architectural state — including in-flight
    /// migrations — intact.
    pub fn reset_measurements(&mut self) {
        for host in &mut self.hosts {
            host.reset_measurements();
        }
        if let Some(timeline) = &mut self.timeline {
            timeline.clear();
        }
        self.peak_inflight = self.tickets.iter().filter(|t| !t.drained).count() as u64;
    }

    /// The merged cluster report.
    #[must_use]
    pub fn report(&self) -> ClusterReport {
        let per_host: Vec<_> = self.hosts.iter().map(EpochHost::report).collect();
        let migrations = self
            .tickets
            .iter()
            .map(|t| MigrationOutcome {
                src_host: t.src_host,
                src_slot: t.src_slot,
                dst_host: t.dst_host,
                dst_slot: t.dst_slot,
                post_copy: t.post_copy,
                downtime_cycles: t.downtime_cycles,
                handed_off: t.handed_off,
                drained: t.drained,
                aborted: t.aborted,
                escalated: t.escalated,
                attempt: t.attempt,
            })
            .collect();
        ClusterReport::new(
            per_host,
            migrations,
            self.peak_inflight,
            self.recovery,
            self.restarts.clone(),
        )
    }

    /// Runs every host's epoch concurrently: contiguous host chunks, one
    /// per pool worker plus one on the calling thread.  Hosts share
    /// nothing within an epoch, so the shard assignment cannot influence
    /// any host's state — only the epoch-boundary serialization below is
    /// order-sensitive, and it always runs on this thread.
    fn advance_hosts(&mut self) {
        let slices = self.params.epoch_slices;
        let crashed = self.crashed.clone();
        let Some(pool) = &self.pool else {
            for (host, dead) in self.hosts.iter_mut().zip(&crashed) {
                if !dead {
                    host.run_slices(slices);
                }
            }
            return;
        };
        let chunk_len = self.hosts.len().div_ceil(pool.workers() + 1);
        let mut chunks = self.hosts.chunks_mut(chunk_len);
        let mut flags = crashed.chunks(chunk_len);
        let local = chunks.next().expect("a cluster has at least one host");
        let local_flags = flags.next().expect("a cluster has at least one host");
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
            .zip(flags)
            .map(|(chunk, chunk_flags)| {
                Box::new(move || {
                    for (host, dead) in chunk.iter_mut().zip(chunk_flags) {
                        if !dead {
                            host.run_slices(slices);
                        }
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_with_local(jobs, || {
            for (host, dead) in local.iter_mut().zip(local_flags) {
                if !dead {
                    host.run_slices(slices);
                }
            }
        });
    }

    // ----- epoch-boundary serialization -------------------------------------

    /// Applies churn and explicitly scheduled migrations due at this
    /// boundary, in install order (churn first).
    fn fire_due_events(&mut self) {
        let now = self.epochs_run;
        while self.churn.front().is_some_and(|e| e.epoch <= now) {
            let event = self.churn.pop_front().expect("front checked above");
            match event.kind {
                ChurnKind::Arrive { home } => self.place_arrival(home),
                ChurnKind::Depart { ordinal } => {
                    if let Some((host, slot)) = self.pick_active(ordinal) {
                        self.hosts[host].set_vm_active(slot, false);
                    }
                }
                ChurnKind::Migrate { ordinal, post_copy } => {
                    if let Some((host, slot)) = self.pick_active(ordinal) {
                        let mode = if post_copy {
                            MigrationMode::PostCopy
                        } else {
                            MigrationMode::PreCopy
                        };
                        // `pick_active` only yields slots on alive hosts
                        // (a crashed host's slots are all inactive), so
                        // the start cannot fail with `HostDown`.
                        let _ = self.try_start_migration(host, slot, mode);
                    }
                }
            }
        }
        while self.scheduled.front().is_some_and(|m| m.epoch <= now) {
            let m = self.scheduled.pop_front().expect("front checked above");
            if !self.crashed[m.src_host] && self.hosts[m.src_host].vm_active(m.src_slot) {
                // A scheduled source is alive by the guard above, so the
                // start cannot fail with `HostDown`.
                let _ = self.start_migration_attempt(m.src_host, m.src_slot, m.mode, 0, m.dst_host);
            }
        }
        self.fire_due_retries();
    }

    /// Re-attempts aborted migrations whose backoff has elapsed, in abort
    /// order.  A retry whose VM departed (or whose host died) while
    /// waiting is dropped; one that cannot find a destination right now
    /// is consumed, not re-queued — the bound is on attempts, not luck.
    fn fire_due_retries(&mut self) {
        let now = self.epochs_run;
        let due: Vec<RetryTicket> = {
            let mut waiting = Vec::with_capacity(self.retries.len());
            let mut due = Vec::new();
            for retry in self.retries.drain(..) {
                if retry.due_epoch <= now {
                    due.push(retry);
                } else {
                    waiting.push(retry);
                }
            }
            self.retries = waiting;
            due
        };
        for retry in due {
            if self.crashed[retry.src_host] || !self.hosts[retry.src_host].vm_active(retry.src_slot)
            {
                continue;
            }
            let mode = if retry.post_copy {
                MigrationMode::PostCopy
            } else {
                MigrationMode::PreCopy
            };
            if matches!(
                self.start_migration_attempt(
                    retry.src_host,
                    retry.src_slot,
                    mode,
                    retry.attempt,
                    None,
                ),
                Ok(true)
            ) {
                self.recovery.migrations_retried += 1;
            }
        }
    }

    // ----- fault injection --------------------------------------------------

    /// Pops and applies every fault event due at this boundary.
    fn fire_due_faults(&mut self) {
        for event in self.faults.pop_due(self.epochs_run) {
            self.apply_fault(event);
        }
    }

    /// Applies one fault event.  Events aimed at an already-crashed host
    /// are counted but do nothing — a dead host cannot fail harder.
    fn apply_fault(&mut self, event: FaultEvent) {
        self.recovery.faults_injected += 1;
        let host = event.kind.host();
        if self.crashed[host] {
            return;
        }
        match event.kind {
            FaultKind::HostCrash { .. } => {
                self.hosts[host].record_fault_span("host_crash", vec![("epoch", event.epoch)]);
                self.crash_host(host, event.epoch);
            }
            FaultKind::LinkDegrade { factor, epochs, .. } => {
                self.hosts[host].record_fault_span(
                    "link_degrade",
                    vec![
                        ("epoch", event.epoch),
                        ("factor", factor),
                        ("epochs", epochs),
                    ],
                );
                self.link_degrade[host] = (factor.max(2), epochs);
            }
            FaultKind::LinkBlackout { epochs, .. } => {
                self.hosts[host].record_fault_span(
                    "link_blackout",
                    vec![("epoch", event.epoch), ("epochs", epochs)],
                );
                self.link_blackout[host] = epochs;
            }
            FaultKind::DramBrownout {
                multiplier_x100,
                epochs,
                ..
            } => {
                self.hosts[host].record_fault_span(
                    "dram_brownout",
                    vec![
                        ("epoch", event.epoch),
                        ("multiplier_x100", multiplier_x100),
                        ("epochs", epochs),
                    ],
                );
                self.brownout[host] = (multiplier_x100.max(1), epochs);
            }
            FaultKind::StuckPreCopy { epochs, .. } => {
                self.hosts[host].record_fault_span(
                    "stuck_precopy",
                    vec![("epoch", event.epoch), ("epochs", epochs)],
                );
                self.stall[host] = epochs;
            }
        }
    }

    /// Takes host `host` down: resolves every migration touching it
    /// (aborts with rollback / bookkeeping discards, scheduling retries
    /// where the source VM survived), then cold-restarts its VMs through
    /// the placement policy.  The host stays down for the rest of the
    /// run.
    fn crash_host(&mut self, host: usize, epoch: u64) {
        self.crashed[host] = true;
        self.recovery.host_crashes += 1;
        for i in 0..self.tickets.len() {
            let t = self.tickets[i];
            if t.drained || (t.src_host != host && t.dst_host != host) {
                continue;
            }
            if t.src_host == host && !t.handed_off {
                // The source died mid-pre-copy: its VM dies with it (the
                // restart sweep below picks the slot up); the alive
                // destination rolls back the partial image it had landed.
                let _ = self.hosts[t.src_host].abort_migration();
                let _ = self.hosts[t.dst_host].abort_receiver(true);
            } else if t.src_host == host {
                // The VM already flipped; only the residual stream died.
                // The alive destination keeps the VM and discards the
                // backlog it can no longer pull (a modeling
                // simplification: lost residual state is not charged).
                let _ = self.hosts[t.dst_host].abort_receiver(false);
            } else if !t.handed_off {
                // The destination died mid-pre-copy: the source resumes
                // its VM (the slot was never deactivated) and the move
                // retries after backoff.  The dead receiver's backlog is
                // discarded in stats only — no rollback work happens on a
                // crashed host.
                let _ = self.hosts[t.src_host].abort_migration();
                let _ = self.hosts[t.dst_host].abort_receiver(false);
                if t.attempt < self.params.max_retries {
                    let attempt = t.attempt + 1;
                    self.retries.push(RetryTicket {
                        due_epoch: epoch
                            + self.params.retry_backoff_epochs.max(1) * u64::from(attempt),
                        src_host: t.src_host,
                        src_slot: t.src_slot,
                        post_copy: t.post_copy,
                        attempt,
                    });
                }
            } else {
                // The destination died after hand-off: the VM dies with
                // it (the restart sweep below picks the slot up); the
                // residual backlog is discarded in stats only.
                let _ = self.hosts[t.dst_host].abort_receiver(false);
            }
            self.tickets[i].aborted = true;
            self.tickets[i].drained = true;
            self.recovery.migrations_aborted += 1;
        }
        let dead_slots: Vec<usize> = (0..self.hosts[host].vm_slots())
            .filter(|&s| self.hosts[host].vm_active(s))
            .collect();
        for slot in dead_slots {
            self.hosts[host].set_vm_active(slot, false);
            let candidates: Vec<(u64, bool)> = self
                .hosts
                .iter()
                .enumerate()
                .map(|(h, candidate)| {
                    let free = !self.crashed[h] && self.free_slot(h).is_some();
                    (candidate.active_vcpus(), free)
                })
                .collect();
            let Some(to_host) = self.params.policy.choose_host(&candidates, host) else {
                self.recovery.restarts_failed += 1;
                continue;
            };
            let to_slot = self
                .free_slot(to_host)
                .expect("choose_host requires a free slot");
            self.hosts[to_host].set_vm_active(to_slot, true);
            self.restarts.push(RestartOutcome {
                from_host: host,
                from_slot: slot,
                to_host,
                to_slot,
                epoch,
                downtime_cycles: self.params.restart_penalty_cycles,
            });
            self.recovery.vm_restarts += 1;
        }
    }

    /// Pushes the current fault windows into the (alive) hosts before
    /// they advance: DRAM brownout multiplier and migration stall.  With
    /// no windows active this re-asserts the nominal state, which is a
    /// strict no-op on host behavior.
    fn apply_fault_state(&mut self) {
        for h in 0..self.hosts.len() {
            if self.crashed[h] {
                continue;
            }
            let multiplier = if self.brownout[h].1 > 0 {
                self.brownout[h].0
            } else {
                100
            };
            self.hosts[h].set_dram_brownout(multiplier);
            self.hosts[h].set_migration_stalled(self.stall[h] > 0);
        }
    }

    /// Burns one epoch off every active fault window (a window fired at
    /// epoch `E` with duration `k` affects epochs `E..E+k`).
    fn tick_fault_windows(&mut self) {
        for h in 0..self.hosts.len() {
            if self.link_degrade[h].1 > 0 {
                self.link_degrade[h].1 -= 1;
            }
            if self.link_blackout[h] > 0 {
                self.link_blackout[h] -= 1;
            }
            if self.brownout[h].1 > 0 {
                self.brownout[h].1 -= 1;
            }
            if self.stall[h] > 0 {
                self.stall[h] -= 1;
            }
        }
    }

    /// Whether `(host, slot)` is tied up by an undrained migration.
    fn in_flight(&self, host: usize, slot: usize) -> bool {
        self.tickets.iter().any(|t| {
            !t.drained
                && ((t.src_host == host && t.src_slot == slot)
                    || (t.dst_host == host && t.dst_slot == slot))
        })
    }

    /// Whether host `host` already receives a migration.
    fn receiver_busy(&self, host: usize) -> bool {
        self.tickets
            .iter()
            .any(|t| !t.drained && t.dst_host == host)
    }

    /// Whether host `host` already sources a pre-copy migration.
    fn source_busy(&self, host: usize) -> bool {
        self.tickets
            .iter()
            .any(|t| !t.drained && !t.handed_off && t.src_host == host)
    }

    /// The `ordinal`-th migratable active VM, wrapping around (hosts in
    /// index order, slots ascending; VMs already mid-migration excluded).
    fn pick_active(&self, ordinal: u64) -> Option<(usize, usize)> {
        let population: Vec<(usize, usize)> = self
            .hosts
            .iter()
            .enumerate()
            .flat_map(|(h, host)| {
                (0..host.vm_slots())
                    .filter(move |&s| host.vm_active(s) && !self.in_flight(h, s))
                    .map(move |s| (h, s))
            })
            .collect();
        if population.is_empty() {
            return None;
        }
        Some(population[(ordinal % population.len() as u64) as usize])
    }

    /// The lowest inactive, unreserved slot on host `host`.
    fn free_slot(&self, host: usize) -> Option<usize> {
        (0..self.hosts[host].vm_slots())
            .find(|&s| !self.hosts[host].vm_active(s) && !self.in_flight(host, s))
    }

    /// Activates an arriving VM on the policy-chosen host.
    fn place_arrival(&mut self, home: usize) {
        let candidates: Vec<(u64, bool)> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(h, host)| {
                (
                    host.active_vcpus(),
                    !self.crashed[h] && self.free_slot(h).is_some(),
                )
            })
            .collect();
        let Some(host) = self.params.policy.choose_host(&candidates, home) else {
            return;
        };
        let slot = self
            .free_slot(host)
            .expect("choose_host requires a free slot");
        self.hosts[host].set_vm_active(slot, true);
    }

    /// Starts an inter-host migration of `(src_host, src_slot)` if a
    /// destination exists and neither side is busy.  Returns whether it
    /// started.
    ///
    /// # Errors
    ///
    /// [`SimError::HostDown`] when the source host was taken down by a
    /// crash fault — a dead host cannot source a migration.
    pub fn try_start_migration(
        &mut self,
        src_host: usize,
        src_slot: usize,
        mode: MigrationMode,
    ) -> Result<bool, SimError> {
        self.start_migration_attempt(src_host, src_slot, mode, 0, None)
    }

    fn start_migration_attempt(
        &mut self,
        src_host: usize,
        src_slot: usize,
        mode: MigrationMode,
        attempt: u32,
        pinned_dst: Option<usize>,
    ) -> Result<bool, SimError> {
        if self.crashed[src_host] {
            return Err(SimError::HostDown { host: src_host });
        }
        if self.in_flight(src_host, src_slot)
            || (mode == MigrationMode::PreCopy
                && (self.source_busy(src_host) || !self.hosts[src_host].migration_idle()))
        {
            return Ok(false);
        }
        let usable = |cluster: &Self, h: usize| {
            h != src_host
                && !cluster.crashed[h]
                && !cluster.receiver_busy(h)
                && cluster.free_slot(h).is_some()
        };
        let dst_host = if let Some(pin) = pinned_dst {
            if pin >= self.hosts.len() || !usable(self, pin) {
                return Ok(false);
            }
            pin
        } else {
            let candidates: Vec<(u64, bool)> = self
                .hosts
                .iter()
                .enumerate()
                .map(|(h, host)| (host.active_vcpus(), usable(self, h)))
                .collect();
            let Some(dst_host) = self.params.policy.choose_host(&candidates, src_host) else {
                return Ok(false);
            };
            dst_host
        };
        let dst_slot = self
            .free_slot(dst_host)
            .expect("choose_host requires a free slot");
        let receiver = ReceiverParams {
            vm_slot: dst_slot,
            ..self.params.receiver
        };
        self.hosts[dst_host].attach_receiver(receiver);
        let mut ticket = Ticket {
            src_host,
            src_slot,
            dst_host,
            dst_slot,
            post_copy: mode == MigrationMode::PostCopy,
            handed_off: false,
            drained: false,
            downtime_cycles: 0,
            aborted: false,
            escalated: false,
            attempt,
            precopy_epochs: 0,
        };
        match mode {
            MigrationMode::PreCopy => {
                let params = MigrationParams {
                    vm_slot: src_slot,
                    ..self.params.migration
                };
                self.hosts[src_host].start_migration(params);
            }
            MigrationMode::PostCopy => {
                // The VM flips now: pause, ship vCPU state, resume over
                // there.  Its memory follows — demand-fetched pages first.
                let image = self.hosts[src_host].vm_image(src_slot);
                self.hosts[src_host].set_vm_active(src_slot, false);
                self.hosts[dst_host].begin_post_copy(image);
                self.hosts[dst_host].mark_source_done();
                self.hosts[dst_host].set_vm_active(dst_slot, true);
                ticket.handed_off = true;
                ticket.downtime_cycles = self.params.migration.pause_resume_cycles;
            }
        }
        self.tickets.push(ticket);
        Ok(true)
    }

    /// The epoch-boundary wire: forwards each undrained migration's
    /// outbox to its receiver (honoring the source link's degradation or
    /// blackout window), performs due hand-offs — including the
    /// non-convergence escalation to post-copy — and retires drained
    /// tickets, strictly in ticket (start) order.
    fn wire_migrations(&mut self) {
        let mut inflight = 0u64;
        for i in 0..self.tickets.len() {
            let ticket = self.tickets[i];
            if ticket.drained {
                continue;
            }
            if !ticket.post_copy {
                if !ticket.handed_off {
                    self.tickets[i].precopy_epochs += 1;
                }
                let mut pages = self.hosts[ticket.src_host].drain_outbox();
                if !pages.is_empty() {
                    if self.link_blackout[ticket.src_host] > 0 {
                        if self.hosts[ticket.src_host].migration_in_precopy() {
                            // A blacked-out wire loses pre-copy pages
                            // outright: the source pays to copy them
                            // again.
                            self.recovery.wire_dropped_pages += pages.len() as u64;
                            self.hosts[ticket.src_host].requeue_copy(pages);
                        } else {
                            // Stop-and-copy residue is the VM's only
                            // up-to-date state — held back reliably,
                            // never dropped.
                            self.hosts[ticket.src_host].requeue_outbox(pages);
                        }
                        pages = Vec::new();
                    } else if self.link_degrade[ticket.src_host].1 > 0 {
                        let budget = (self.params.migration.copy_pages_per_slice
                            * self.params.epoch_slices
                            / self.link_degrade[ticket.src_host].0)
                            .max(1) as usize;
                        if pages.len() > budget {
                            let held = pages.split_off(budget);
                            self.hosts[ticket.src_host].requeue_outbox(held);
                        }
                    }
                }
                if !pages.is_empty() {
                    self.hosts[ticket.dst_host].deliver_pages(pages);
                }
                if !self.tickets[i].handed_off
                    && self.params.stall_timeout_epochs > 0
                    && self.tickets[i].precopy_epochs >= self.params.stall_timeout_epochs
                    && self.hosts[ticket.src_host].migration_in_precopy()
                {
                    // Non-convergence timeout: stop iterating and flip
                    // the VM post-copy style — the destination pulls
                    // whatever the source never sent.
                    let pending = self.hosts[ticket.src_host].escalate_migration();
                    self.hosts[ticket.dst_host].begin_post_copy(pending);
                    self.hosts[ticket.dst_host].mark_source_done();
                    self.hosts[ticket.src_host].set_vm_active(ticket.src_slot, false);
                    self.hosts[ticket.dst_host].set_vm_active(ticket.dst_slot, true);
                    self.tickets[i].handed_off = true;
                    self.tickets[i].escalated = true;
                    self.tickets[i].downtime_cycles = self.params.migration.pause_resume_cycles;
                    self.recovery.migrations_escalated += 1;
                } else if !self.tickets[i].handed_off
                    && self.hosts[ticket.src_host].migration_idle()
                {
                    // The source converged and ran stop-and-copy this
                    // epoch: flip the VM.
                    self.tickets[i].downtime_cycles = self.hosts[ticket.src_host]
                        .migration_stats()
                        .downtime_cycles;
                    self.tickets[i].handed_off = true;
                    self.hosts[ticket.dst_host].mark_source_done();
                    self.hosts[ticket.src_host].set_vm_active(ticket.src_slot, false);
                    self.hosts[ticket.dst_host].set_vm_active(ticket.dst_slot, true);
                }
            }
            if self.tickets[i].handed_off && self.hosts[ticket.dst_host].receiver_complete() {
                self.tickets[i].drained = true;
            } else {
                inflight += 1;
            }
        }
        self.peak_inflight = self.peak_inflight.max(inflight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric::metrics::{HostReport, MigrationStats};
    use hatric::telemetry::TraceSink;
    use hatric_types::GuestFrame;

    /// A host stub precise enough to exercise the boundary wiring: an
    /// outgoing "migration" emits 4 pages per epoch from a 10-page image
    /// and completes when the image is sent; the receiver mirrors the
    /// counting.
    #[derive(Debug)]
    struct MockHost {
        active: Vec<bool>,
        slices: u64,
        outgoing: Option<(u64, u64)>, // (sent, total)
        outbox: Vec<GuestFrame>,
        incoming: Option<(u64, bool)>, // (pending, source_done)
        downtime: u64,
        stalled: bool,
    }

    impl MockHost {
        fn new(active: usize, slots: usize) -> Self {
            Self {
                active: (0..slots).map(|s| s < active).collect(),
                slices: 0,
                outgoing: None,
                outbox: Vec::new(),
                incoming: None,
                downtime: 0,
                stalled: false,
            }
        }
    }

    impl EpochHost for MockHost {
        fn run_slices(&mut self, n: u64) {
            self.slices += n;
            if let Some((sent, total)) = &mut self.outgoing {
                if !self.stalled {
                    let burst = 4.min(*total - *sent);
                    for p in 0..burst {
                        self.outbox.push(GuestFrame::new(*sent + p));
                    }
                    *sent += burst;
                    if sent == total {
                        self.downtime = 111;
                    }
                }
            }
            if let Some((pending, _)) = &mut self.incoming {
                *pending = pending.saturating_sub(4);
            }
        }
        fn reset_measurements(&mut self) {}
        fn report(&self) -> HostReport {
            HostReport::default()
        }
        fn vm_slots(&self) -> usize {
            self.active.len()
        }
        fn vm_active(&self, slot: usize) -> bool {
            self.active[slot]
        }
        fn set_vm_active(&mut self, slot: usize, active: bool) {
            self.active[slot] = active;
        }
        fn active_vcpus(&self) -> u64 {
            self.active.iter().filter(|a| **a).count() as u64
        }
        fn sim_cycles(&self) -> u64 {
            self.slices
        }
        fn vm_image(&self, _slot: usize) -> Vec<GuestFrame> {
            (0..10).map(GuestFrame::new).collect()
        }
        fn start_migration(&mut self, _params: MigrationParams) {
            self.outgoing = Some((0, 10));
            self.downtime = 0;
        }
        fn migration_idle(&self) -> bool {
            self.outgoing.is_none_or(|(sent, total)| sent == total)
        }
        fn migration_stats(&self) -> MigrationStats {
            MigrationStats {
                downtime_cycles: self.downtime,
                ..MigrationStats::default()
            }
        }
        fn migration_pending_pages(&self) -> u64 {
            self.outgoing.map_or(0, |(sent, total)| total - sent)
        }
        fn drain_outbox(&mut self) -> Vec<GuestFrame> {
            std::mem::take(&mut self.outbox)
        }
        fn attach_receiver(&mut self, _params: ReceiverParams) {
            self.incoming = Some((0, false));
        }
        fn deliver_pages(&mut self, pages: Vec<GuestFrame>) {
            if let Some((pending, _)) = &mut self.incoming {
                *pending += pages.len() as u64;
            }
        }
        fn begin_post_copy(&mut self, outstanding: Vec<GuestFrame>) {
            if let Some((pending, _)) = &mut self.incoming {
                *pending += outstanding.len() as u64;
            }
        }
        fn mark_source_done(&mut self) {
            if let Some((_, done)) = &mut self.incoming {
                *done = true;
            }
        }
        fn receiver_complete(&self) -> bool {
            self.incoming
                .is_some_and(|(pending, done)| done && pending == 0)
        }
        fn receiver_pending_pages(&self) -> u64 {
            self.incoming.map_or(0, |(pending, _)| pending)
        }
        fn abort_migration(&mut self) -> u64 {
            self.outgoing = None;
            let discarded = self.outbox.len() as u64;
            self.outbox.clear();
            discarded
        }
        fn escalate_migration(&mut self) -> Vec<GuestFrame> {
            let pending = self.outgoing.map_or(Vec::new(), |(sent, total)| {
                (sent..total).map(GuestFrame::new).collect()
            });
            self.outgoing = None;
            pending
        }
        fn migration_in_precopy(&self) -> bool {
            self.outgoing.is_some_and(|(sent, total)| sent < total)
        }
        fn requeue_outbox(&mut self, pages: Vec<GuestFrame>) {
            let tail = std::mem::replace(&mut self.outbox, pages);
            self.outbox.extend(tail);
        }
        fn requeue_copy(&mut self, pages: Vec<GuestFrame>) {
            if let Some((sent, _)) = &mut self.outgoing {
                *sent = sent.saturating_sub(pages.len() as u64);
            }
        }
        fn set_migration_stalled(&mut self, stalled: bool) {
            self.stalled = stalled;
        }
        fn abort_receiver(&mut self, _rollback: bool) -> u64 {
            let discarded = self.incoming.map_or(0, |(pending, _)| pending);
            if let Some((pending, done)) = &mut self.incoming {
                *pending = 0;
                *done = true;
            }
            discarded
        }
        fn set_dram_brownout(&mut self, _multiplier_x100: u64) {}
        fn enable_tracing(&mut self, _capacity: usize) {}
        fn trace_sink(&self) -> Option<&TraceSink> {
            None
        }
    }

    fn two_hosts() -> Cluster<MockHost> {
        Cluster::new(
            vec![MockHost::new(2, 3), MockHost::new(1, 3)],
            ClusterParams::new(1, 1),
        )
    }

    #[test]
    fn precopy_migration_streams_pages_and_flips_the_vm() {
        let mut cluster = two_hosts();
        assert!(cluster
            .try_start_migration(0, 0, MigrationMode::PreCopy)
            .unwrap());
        assert!(
            !cluster
                .try_start_migration(0, 0, MigrationMode::PreCopy)
                .unwrap(),
            "the slot is already migrating"
        );
        cluster.run_epochs(5);
        let report = cluster.report();
        assert_eq!(report.migrations.len(), 1);
        let outcome = report.migrations[0];
        assert!(outcome.handed_off && outcome.drained);
        assert_eq!(outcome.downtime_cycles, 111);
        assert_eq!((outcome.dst_host, outcome.dst_slot), (1, 1));
        assert!(
            !cluster.hosts()[0].vm_active(0),
            "the source slot deactivated at hand-off"
        );
        assert!(cluster.hosts()[1].vm_active(1), "the destination slot runs");
        assert_eq!(report.peak_inflight, 1);
    }

    #[test]
    fn postcopy_flips_immediately_and_drains_behind() {
        let mut cluster = two_hosts();
        assert!(cluster
            .try_start_migration(0, 1, MigrationMode::PostCopy)
            .unwrap());
        assert!(
            !cluster.hosts()[0].vm_active(1),
            "source deactivates at once"
        );
        assert!(cluster.hosts()[1].vm_active(1), "destination runs at once");
        cluster.run_epochs(4);
        let report = cluster.report();
        assert!(report.migrations[0].drained);
        assert_eq!(
            report.migrations[0].downtime_cycles,
            ClusterParams::new(1, 1).migration.pause_resume_cycles
        );
    }

    #[test]
    fn churn_arrivals_fill_the_least_loaded_host() {
        let mut cluster = two_hosts();
        cluster.set_churn(vec![ChurnEvent {
            epoch: 0,
            kind: ChurnKind::Arrive { home: 0 },
        }]);
        cluster.run_epochs(1);
        assert!(
            cluster.hosts()[1].vm_active(1),
            "host 1 had fewer active vCPUs, so the arrival lands there"
        );
    }

    #[test]
    fn destination_crash_aborts_retries_and_restarts() {
        let mut cluster = Cluster::new(
            vec![
                MockHost::new(2, 3),
                MockHost::new(1, 3),
                MockHost::new(1, 3),
            ],
            ClusterParams {
                max_retries: 1,
                retry_backoff_epochs: 1,
                ..ClusterParams::new(1, 1)
            },
        );
        assert!(cluster
            .try_start_migration(0, 0, MigrationMode::PreCopy)
            .unwrap());
        cluster
            .set_faults(vec![FaultEvent {
                epoch: 1,
                kind: FaultKind::HostCrash { host: 1 },
            }])
            .unwrap();
        cluster.run_epochs(8);
        let report = cluster.report();
        assert_eq!(report.recovery.host_crashes, 1);
        assert_eq!(report.recovery.migrations_aborted, 1);
        assert_eq!(report.recovery.migrations_retried, 1);
        assert_eq!(report.recovery.vm_restarts, 1, "host 1's VM re-placed");
        assert_eq!(report.restarts.len(), 1);
        assert_eq!(report.restarts[0].to_host, 2);
        assert_eq!(report.migrations.len(), 2, "the abort plus its retry");
        assert!(report.migrations[0].aborted && !report.migrations[0].handed_off);
        let retry = report.migrations[1];
        assert_eq!(retry.attempt, 1);
        assert_eq!(retry.dst_host, 2, "the retry avoids the dead host");
        assert!(retry.handed_off && retry.drained && !retry.aborted);
        assert!(
            cluster.hosts()[0].vm_active(1),
            "the bystander VM on the source is untouched"
        );
        assert!(cluster.is_crashed(1));
        let err = cluster
            .try_start_migration(1, 0, MigrationMode::PreCopy)
            .unwrap_err();
        assert_eq!(err, SimError::HostDown { host: 1 });
    }

    #[test]
    fn blackout_drops_precopy_pages_and_the_source_resends() {
        let mut cluster = two_hosts();
        assert!(cluster
            .try_start_migration(0, 0, MigrationMode::PreCopy)
            .unwrap());
        cluster
            .set_faults(vec![FaultEvent {
                epoch: 0,
                kind: FaultKind::LinkBlackout { host: 0, epochs: 1 },
            }])
            .unwrap();
        cluster.run_epochs(10);
        let report = cluster.report();
        assert_eq!(
            report.recovery.wire_dropped_pages, 4,
            "one epoch's burst was lost"
        );
        let outcome = report.migrations[0];
        assert!(outcome.handed_off && outcome.drained && !outcome.aborted);
    }

    #[test]
    fn stuck_precopy_escalates_to_postcopy_after_timeout() {
        let mut cluster = Cluster::new(
            vec![MockHost::new(2, 3), MockHost::new(1, 3)],
            ClusterParams {
                stall_timeout_epochs: 3,
                ..ClusterParams::new(1, 1)
            },
        );
        assert!(cluster
            .try_start_migration(0, 0, MigrationMode::PreCopy)
            .unwrap());
        cluster
            .set_faults(vec![FaultEvent {
                epoch: 0,
                kind: FaultKind::StuckPreCopy {
                    host: 0,
                    epochs: 10,
                },
            }])
            .unwrap();
        cluster.run_epochs(8);
        let report = cluster.report();
        assert_eq!(report.recovery.migrations_escalated, 1);
        let outcome = report.migrations[0];
        assert!(outcome.escalated && outcome.handed_off && outcome.drained);
        assert_eq!(
            outcome.downtime_cycles, cluster.params.migration.pause_resume_cycles,
            "escalation pays the post-copy flip, not a stop-and-copy"
        );
        assert!(!cluster.hosts()[0].vm_active(0), "source slot flipped away");
        assert!(cluster.hosts()[1].vm_active(1), "destination slot runs");
    }

    #[test]
    fn fault_schedule_naming_an_unknown_host_is_rejected() {
        use hatric_types::ConfigError;
        let mut cluster = two_hosts();
        let err = cluster
            .set_faults(vec![FaultEvent {
                epoch: 0,
                kind: FaultKind::HostCrash { host: 9 },
            }])
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadFaultPlan { .. }));
    }

    #[test]
    fn timeline_tracks_inflight_and_loads() {
        let mut cluster = two_hosts();
        cluster.enable_timeline(1);
        cluster
            .try_start_migration(0, 0, MigrationMode::PreCopy)
            .unwrap();
        cluster.run_epochs(2);
        let timeline = cluster.timeline().expect("enabled");
        assert_eq!(
            timeline.series(),
            &[
                "inflight_migrations",
                "active_vms",
                "pending_pages",
                "host0_load",
                "host1_load"
            ]
        );
        assert_eq!(timeline.samples()[0].1[0], 1, "one migration in flight");
    }
}
