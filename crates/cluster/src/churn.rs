//! Deterministic VM arrival/departure churn.
//!
//! A [`ChurnStream`] expands a seed into a fixed schedule of
//! [`ChurnEvent`]s *before* the cluster runs — the stream is data, not a
//! live random source, so a scenario's churn is byte-identical for any
//! thread count and both engine backends, and tests can fuzz over streams
//! by fuzzing the generator inputs.

use serde::{Deserialize, Serialize};

/// One churn event, due at the start of `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Epoch (0-based, counted over the whole run including warmup) at
    /// whose boundary the event fires.
    pub epoch: u64,
    /// What happens.
    pub kind: ChurnKind,
}

/// The kinds of churn the cluster reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnKind {
    /// A VM arrives; the placement policy picks the host (the arrival's
    /// `home` is its affinity hint) and the lowest free slot there.
    Arrive {
        /// Home-host hint for [`PlacementPolicy::Affinity`](crate::PlacementPolicy::Affinity).
        home: usize,
    },
    /// The `ordinal`-th currently-active VM (counting over hosts in
    /// index order, then slots) departs.  VMs involved in an in-flight
    /// migration are skipped when counting.
    Depart {
        /// Selector into the active-VM population (wraps around).
        ordinal: u64,
    },
    /// The `ordinal`-th active VM is live-migrated to the
    /// policy-chosen host (skipped when it is already mid-migration or no
    /// destination has a free slot).
    Migrate {
        /// Selector into the active-VM population (wraps around).
        ordinal: u64,
        /// Post-copy instead of pre-copy.
        post_copy: bool,
    },
}

/// splitmix64 — the tiny deterministic generator the workloads crate also
/// builds on.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Expands a seed into a deterministic churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnStream {
    /// Master seed.
    pub seed: u64,
    /// Number of hosts (homes are drawn `mod hosts`).
    pub hosts: usize,
    /// Mean epochs between events (events are drawn per epoch with
    /// probability `1/period`; `0` disables churn entirely).
    pub period: u64,
}

impl ChurnStream {
    /// A stream drawing roughly one event every `period` epochs.
    #[must_use]
    pub fn new(seed: u64, hosts: usize, period: u64) -> Self {
        Self {
            seed,
            hosts,
            period,
        }
    }

    /// The events due over `epochs` epochs, in epoch order.  The draw per
    /// epoch: event-or-not, then kind (arrival 40%, departure 30%,
    /// migration 30% — half of the migrations post-copy), then the
    /// selector fields.
    #[must_use]
    pub fn generate(&self, epochs: u64) -> Vec<ChurnEvent> {
        if self.period == 0 || self.hosts == 0 {
            return Vec::new();
        }
        let mut state = self.seed ^ 0xc1u64.rotate_left(32);
        let mut draw = || {
            splitmix64(&mut state);
            state
        };
        let mut events = Vec::new();
        for epoch in 0..epochs {
            if draw() % self.period != 0 {
                continue;
            }
            let kind = match draw() % 10 {
                0..=3 => ChurnKind::Arrive {
                    home: (draw() % self.hosts as u64) as usize,
                },
                4..=6 => ChurnKind::Depart { ordinal: draw() },
                _ => ChurnKind::Migrate {
                    ordinal: draw(),
                    post_copy: draw() % 2 == 0,
                },
            };
            events.push(ChurnEvent { epoch, kind });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_epoch_ordered() {
        let stream = ChurnStream::new(42, 4, 3);
        let a = stream.generate(64);
        let b = stream.generate(64);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].epoch <= w[1].epoch));
        assert!(!a.is_empty(), "period 3 over 64 epochs must draw events");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChurnStream::new(1, 4, 2).generate(64);
        let b = ChurnStream::new(2, 4, 2).generate(64);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_period_disables_churn() {
        assert!(ChurnStream::new(7, 4, 0).generate(64).is_empty());
    }
}
