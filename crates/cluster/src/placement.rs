//! Where new and migrating VMs land.

use serde::{Deserialize, Serialize};

/// Picks the host a VM arrival (or a migration destination) lands on.
///
/// Both policies are pure functions of `(loads, free slots, home)` with
/// host-index tie-breaks, so placement is deterministic for a
/// deterministic churn stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The host with the fewest scheduled vCPUs that still has a free
    /// slot (ties broken by lowest host index).
    LeastLoaded,
    /// Prefer the VM's *home* host (data locality: the image, its
    /// storage replicas) when it has a free slot; fall back to
    /// least-loaded otherwise.
    Affinity,
}

impl PlacementPolicy {
    /// Parses the CLI label (`least_loaded` / `affinity`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized label.
    pub fn parse(label: &str) -> Result<Self, String> {
        match label {
            "least_loaded" => Ok(Self::LeastLoaded),
            "affinity" => Ok(Self::Affinity),
            other => Err(format!(
                "unknown placement policy {other:?} (expected least_loaded|affinity)"
            )),
        }
    }

    /// The registry/CLI label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::LeastLoaded => "least_loaded",
            Self::Affinity => "affinity",
        }
    }

    /// Chooses a host for a VM whose home is `home`.  `candidates` is one
    /// entry per host: `(load, has_free_slot)`.  Returns `None` when no
    /// host has a free slot.
    #[must_use]
    pub fn choose_host(&self, candidates: &[(u64, bool)], home: usize) -> Option<usize> {
        if *self == Self::Affinity {
            if let Some(&(_, true)) = candidates.get(home) {
                return Some(home);
            }
        }
        candidates
            .iter()
            .enumerate()
            .filter(|(_, (_, free))| *free)
            .min_by_key(|(index, (load, _))| (*load, *index))
            .map(|(index, _)| index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_breaks_ties_by_index() {
        let candidates = [(8, true), (3, true), (3, true), (1, false)];
        assert_eq!(
            PlacementPolicy::LeastLoaded.choose_host(&candidates, 0),
            Some(1)
        );
    }

    #[test]
    fn affinity_prefers_home_until_it_is_full() {
        let candidates = [(8, true), (3, true)];
        assert_eq!(
            PlacementPolicy::Affinity.choose_host(&candidates, 0),
            Some(0)
        );
        let full_home = [(8, false), (3, true)];
        assert_eq!(
            PlacementPolicy::Affinity.choose_host(&full_home, 0),
            Some(1)
        );
    }

    #[test]
    fn no_free_slot_anywhere_yields_none() {
        assert_eq!(
            PlacementPolicy::LeastLoaded.choose_host(&[(1, false), (2, false)], 0),
            None
        );
    }

    #[test]
    fn labels_round_trip() {
        for policy in [PlacementPolicy::LeastLoaded, PlacementPolicy::Affinity] {
            assert_eq!(PlacementPolicy::parse(policy.label()), Ok(policy));
        }
        assert!(PlacementPolicy::parse("round_robin").is_err());
    }
}
