//! # hatric-cluster
//!
//! The datacenter tier: a [`Cluster`] owns N consolidated hosts — each
//! with its own platform, cache hierarchy, HATRIC directory and memory
//! system — and advances them in **lockstep epochs** of a fixed number of
//! scheduler slices.  Hosts are completely independent *within* an epoch,
//! so the cluster shards them across the slice engine's
//! [`WorkerPool`](hatric::WorkerPool) (contiguous chunks, one per worker);
//! everything that couples hosts — migration page streams, VM
//! arrival/departure churn, placement decisions — happens serially at the
//! epoch boundary in host-index order.  The result is byte-identical for
//! any thread count, the same discipline the per-host slice engine
//! follows for its VM units.
//!
//! On top of the epoch loop the cluster models **inter-host live
//! migration end-to-end**:
//!
//! * **Pre-copy** — the source host runs the existing
//!   [`MigrationEngine`](hatric_migration::MigrationEngine) (write-protect
//!   storms, dirty-rate-driven rounds, stop-and-copy downtime); the pages
//!   it transfers are drained from its outbox each epoch and delivered to
//!   the destination's [`MigrationReceiver`](hatric_migration::MigrationReceiver),
//!   which materializes them as first-touch faults plus nested-PTE stores
//!   — the **destination remap storm**.  When the source converges, the VM
//!   hand-off flips activity from the source slot to the destination slot.
//! * **Post-copy** — the VM flips immediately (a fixed pause/resume
//!   downtime) and runs on the destination while its memory is still on
//!   the source; the receiver pulls the outstanding image, demand-fetched
//!   pages first at critical-path cost.
//! * **Auto-convergence** — pre-copy sources whose dirty rate outruns the
//!   link throttle the migrating VM's scheduler slices
//!   ([`MigrationParams::throttle_after_rounds`](hatric_migration::MigrationParams)).
//!
//! A [`PlacementPolicy`] reacts to a deterministic [`ChurnStream`] of VM
//! arrivals and departures, and [`ClusterReport`] merges the per-host
//! reports into cluster aggregates (including the causal ledger and a
//! per-migration downtime distribution).
//!
//! ## Fault injection & recovery
//!
//! [`Cluster::set_faults`] arms a deterministic
//! [`FaultClock`] of typed fault events, all
//! keyed to epoch boundaries (sim-time, never wall-clock, so fault runs
//! stay byte-identical across thread counts and engine backends):
//!
//! * **Host crash** — the host drops out at the epoch boundary; every
//!   migration touching it aborts (source resumes its VM, destination
//!   rolls back the partial image it had landed), its VMs cold-restart
//!   through the [`PlacementPolicy`], and aborted migrations whose
//!   *source* survived retry after a deterministic linear backoff.
//! * **Link degradation / blackout** — the host's outgoing migration wire
//!   delivers a reduced page budget per epoch (remainder held back
//!   reliably), or nothing at all (pre-copy pages are dropped on the
//!   floor and re-sent; stop-and-copy residue is held, never lost).
//! * **DRAM brownout** — the host's DRAM devices serve every line slower
//!   by an integer multiplier, back-pressuring through the leaky-bucket
//!   queue model.
//! * **Stuck pre-copy** — the outgoing migration engine freezes for a
//!   window; combined with `stall_timeout_epochs`, a non-converging
//!   pre-copy is force-escalated to a post-copy flip.
//!
//! [`ClusterReport::recovery`](report::RecoveryStats) accounts for
//! crashes, restarts, aborted/retried/escalated migrations and fleet
//! unavailability; `recovery_downtime_percentile` gates the fault
//! scenario's HATRIC-vs-software claim.
//!
//! The cluster knows hosts only through the [`EpochHost`] trait —
//! `hatric-host` implements it for `ConsolidatedHost`, keeping this crate
//! below the host crate in the dependency graph (the scenario registry
//! lives up there).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod churn;
pub mod cluster;
pub mod placement;
pub mod report;

pub use churn::{ChurnEvent, ChurnKind, ChurnStream};
pub use cluster::{Cluster, ClusterParams, MigrationMode, ScheduledMigration};
pub use hatric_faults::{FaultClock, FaultEvent, FaultKind, FaultPlan, FaultWeights};
pub use placement::PlacementPolicy;
pub use report::{ClusterReport, MigrationOutcome, RecoveryStats, RestartOutcome};

use hatric::metrics::{HostReport, MigrationStats};
use hatric::telemetry::TraceSink;
use hatric_migration::{MigrationParams, ReceiverParams};
use hatric_types::GuestFrame;

/// What the cluster needs from one host to advance it in epochs and wire
/// inter-host migrations through it.
///
/// `hatric-host` implements this for `ConsolidatedHost`; the trait exists
/// so the cluster crate can sit *below* the host crate (which owns the
/// scenario registry) in the dependency graph.  `Send` because the epoch
/// loop moves host borrows across worker threads.
///
/// Per-host invariants the cluster relies on: at most one outgoing
/// migration engine and at most one incoming receiver are live on a host
/// at a time (the [`Cluster`] serializes additional requests).
pub trait EpochHost: std::fmt::Debug + Send {
    /// Advances the host by `n` scheduler slices.
    fn run_slices(&mut self, n: u64);
    /// Clears measurement counters while keeping architectural state
    /// (called once at the cluster's warmup/measured boundary).
    fn reset_measurements(&mut self);
    /// The host's report (per-VM + host aggregate + migration stats).
    fn report(&self) -> HostReport;
    /// Number of VM slots this host was built with.
    fn vm_slots(&self) -> usize;
    /// Whether slot `slot` is active (scheduled).
    fn vm_active(&self, slot: usize) -> bool;
    /// Activates or deactivates slot `slot` (arrivals, departures, and
    /// the migration hand-off flip).
    fn set_vm_active(&mut self, slot: usize, active: bool);
    /// Scheduled vCPUs across active slots — the placement load gauge.
    fn active_vcpus(&self) -> u64;
    /// The host's simulated time: its largest per-CPU cycle counter.
    fn sim_cycles(&self) -> u64;
    /// Guest-physical frames currently mapped for slot `slot` (the image
    /// a post-copy destination must pull).
    fn vm_image(&self, slot: usize) -> Vec<GuestFrame>;

    // ----- outgoing (source side) ----------------------------------------
    /// Starts a pre-copy migration of `params.vm_slot` at the host's next
    /// slice (the host overrides `params.start_slice`).
    fn start_migration(&mut self, params: MigrationParams);
    /// Whether no outgoing migration is mid-protocol (none ever started,
    /// or the last one completed).
    fn migration_idle(&self) -> bool;
    /// Statistics of the current (or last) outgoing migration engine.
    fn migration_stats(&self) -> MigrationStats;
    /// Pages the outgoing migration still has to transfer.
    fn migration_pending_pages(&self) -> u64;
    /// Takes the pages the outgoing migration transferred since the last
    /// drain (the inter-host wire).
    fn drain_outbox(&mut self) -> Vec<GuestFrame>;

    // ----- incoming (destination side) -----------------------------------
    /// Installs a destination-side receiver for `params.vm_slot`
    /// (replacing — and folding the stats of — any finished one).
    fn attach_receiver(&mut self, params: ReceiverParams);
    /// Queues pages arriving over the wire for the receiver.
    fn deliver_pages(&mut self, pages: Vec<GuestFrame>);
    /// Switches the receiver to post-copy over `outstanding` pages.
    fn begin_post_copy(&mut self, outstanding: Vec<GuestFrame>);
    /// Tells the receiver the source finished sending.
    fn mark_source_done(&mut self);
    /// Whether the receiver (if any) has landed everything.
    fn receiver_complete(&self) -> bool;
    /// Pages the receiver still has to land (inbox + outstanding).
    fn receiver_pending_pages(&self) -> u64;

    // ----- robustness (fault injection & recovery) ------------------------
    /// Tears down the outgoing migration mid-protocol: the VM keeps
    /// running on the source (its slot was never deactivated), throttling
    /// stops, and the un-sent backlog is discarded.  Returns the number of
    /// outbox pages thrown away.  No-op (returning 0) when the migration
    /// is already terminal or none ever started.
    fn abort_migration(&mut self) -> u64;
    /// Force-escalates the outgoing pre-copy to a post-copy hand-off:
    /// terminates the source engine and returns the pages the destination
    /// must still pull (dirty set ∪ copy backlog, deduplicated).  Empty
    /// when the migration is already terminal.
    fn escalate_migration(&mut self) -> Vec<GuestFrame>;
    /// Whether the outgoing migration is in its pre-copy rounds (the only
    /// phase blackout re-sends and escalation apply to).
    fn migration_in_precopy(&self) -> bool;
    /// Returns undelivered pages to the *front* of the outgoing wire
    /// queue, preserving order — the wire held them back reliably (link
    /// degradation); they were transferred, just not yet delivered.
    fn requeue_outbox(&mut self, pages: Vec<GuestFrame>);
    /// Returns dropped pages to the front of the outgoing copy queue —
    /// the wire lost them (link blackout) and the source must genuinely
    /// re-send, paying the copy cost again.
    fn requeue_copy(&mut self, pages: Vec<GuestFrame>);
    /// Freezes (or thaws) the outgoing migration engine: a stalled engine
    /// makes no protocol progress and counts stalled slices.  The
    /// `StuckPreCopy` fault window drives this.
    fn set_migration_stalled(&mut self, stalled: bool);
    /// Tears down the incoming receiver.  With `rollback`, un-registers
    /// the first-touch remaps the receiver had landed (frees the frames,
    /// clears the nested-PT entries, pays the shootdown/coherence bill) —
    /// the destination of a crashed source must not keep a partial image.
    /// Returns pages discarded (backlog plus rolled-back landings).
    fn abort_receiver(&mut self, rollback: bool) -> u64;
    /// Applies a DRAM brownout service multiplier (×100; `100` restores
    /// nominal speed) to every DRAM device on the host.
    fn set_dram_brownout(&mut self, multiplier_x100: u64);
    /// Records a fault span on the host's hypervisor trace track.  No-op
    /// by default (and when tracing is disabled).
    fn record_fault_span(&mut self, _name: &'static str, _args: Vec<(&'static str, u64)>) {}

    // ----- observability --------------------------------------------------
    /// Enables sim-time tracing with the given span capacity.
    fn enable_tracing(&mut self, capacity: usize);
    /// The host's trace sink, when tracing is enabled.
    fn trace_sink(&self) -> Option<&TraceSink>;
}
