//! # hatric-cluster
//!
//! The datacenter tier: a [`Cluster`] owns N consolidated hosts — each
//! with its own platform, cache hierarchy, HATRIC directory and memory
//! system — and advances them in **lockstep epochs** of a fixed number of
//! scheduler slices.  Hosts are completely independent *within* an epoch,
//! so the cluster shards them across the slice engine's
//! [`WorkerPool`](hatric::WorkerPool) (contiguous chunks, one per worker);
//! everything that couples hosts — migration page streams, VM
//! arrival/departure churn, placement decisions — happens serially at the
//! epoch boundary in host-index order.  The result is byte-identical for
//! any thread count, the same discipline the per-host slice engine
//! follows for its VM units.
//!
//! On top of the epoch loop the cluster models **inter-host live
//! migration end-to-end**:
//!
//! * **Pre-copy** — the source host runs the existing
//!   [`MigrationEngine`](hatric_migration::MigrationEngine) (write-protect
//!   storms, dirty-rate-driven rounds, stop-and-copy downtime); the pages
//!   it transfers are drained from its outbox each epoch and delivered to
//!   the destination's [`MigrationReceiver`](hatric_migration::MigrationReceiver),
//!   which materializes them as first-touch faults plus nested-PTE stores
//!   — the **destination remap storm**.  When the source converges, the VM
//!   hand-off flips activity from the source slot to the destination slot.
//! * **Post-copy** — the VM flips immediately (a fixed pause/resume
//!   downtime) and runs on the destination while its memory is still on
//!   the source; the receiver pulls the outstanding image, demand-fetched
//!   pages first at critical-path cost.
//! * **Auto-convergence** — pre-copy sources whose dirty rate outruns the
//!   link throttle the migrating VM's scheduler slices
//!   ([`MigrationParams::throttle_after_rounds`](hatric_migration::MigrationParams)).
//!
//! A [`PlacementPolicy`] reacts to a deterministic [`ChurnStream`] of VM
//! arrivals and departures, and [`ClusterReport`] merges the per-host
//! reports into cluster aggregates (including the causal ledger and a
//! per-migration downtime distribution).
//!
//! The cluster knows hosts only through the [`EpochHost`] trait —
//! `hatric-host` implements it for `ConsolidatedHost`, keeping this crate
//! below the host crate in the dependency graph (the scenario registry
//! lives up there).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod churn;
pub mod cluster;
pub mod placement;
pub mod report;

pub use churn::{ChurnEvent, ChurnKind, ChurnStream};
pub use cluster::{Cluster, ClusterParams, MigrationMode, ScheduledMigration};
pub use placement::PlacementPolicy;
pub use report::{ClusterReport, MigrationOutcome};

use hatric::metrics::{HostReport, MigrationStats};
use hatric::telemetry::TraceSink;
use hatric_migration::{MigrationParams, ReceiverParams};
use hatric_types::GuestFrame;

/// What the cluster needs from one host to advance it in epochs and wire
/// inter-host migrations through it.
///
/// `hatric-host` implements this for `ConsolidatedHost`; the trait exists
/// so the cluster crate can sit *below* the host crate (which owns the
/// scenario registry) in the dependency graph.  `Send` because the epoch
/// loop moves host borrows across worker threads.
///
/// Per-host invariants the cluster relies on: at most one outgoing
/// migration engine and at most one incoming receiver are live on a host
/// at a time (the [`Cluster`] serializes additional requests).
pub trait EpochHost: std::fmt::Debug + Send {
    /// Advances the host by `n` scheduler slices.
    fn run_slices(&mut self, n: u64);
    /// Clears measurement counters while keeping architectural state
    /// (called once at the cluster's warmup/measured boundary).
    fn reset_measurements(&mut self);
    /// The host's report (per-VM + host aggregate + migration stats).
    fn report(&self) -> HostReport;
    /// Number of VM slots this host was built with.
    fn vm_slots(&self) -> usize;
    /// Whether slot `slot` is active (scheduled).
    fn vm_active(&self, slot: usize) -> bool;
    /// Activates or deactivates slot `slot` (arrivals, departures, and
    /// the migration hand-off flip).
    fn set_vm_active(&mut self, slot: usize, active: bool);
    /// Scheduled vCPUs across active slots — the placement load gauge.
    fn active_vcpus(&self) -> u64;
    /// The host's simulated time: its largest per-CPU cycle counter.
    fn sim_cycles(&self) -> u64;
    /// Guest-physical frames currently mapped for slot `slot` (the image
    /// a post-copy destination must pull).
    fn vm_image(&self, slot: usize) -> Vec<GuestFrame>;

    // ----- outgoing (source side) ----------------------------------------
    /// Starts a pre-copy migration of `params.vm_slot` at the host's next
    /// slice (the host overrides `params.start_slice`).
    fn start_migration(&mut self, params: MigrationParams);
    /// Whether no outgoing migration is mid-protocol (none ever started,
    /// or the last one completed).
    fn migration_idle(&self) -> bool;
    /// Statistics of the current (or last) outgoing migration engine.
    fn migration_stats(&self) -> MigrationStats;
    /// Pages the outgoing migration still has to transfer.
    fn migration_pending_pages(&self) -> u64;
    /// Takes the pages the outgoing migration transferred since the last
    /// drain (the inter-host wire).
    fn drain_outbox(&mut self) -> Vec<GuestFrame>;

    // ----- incoming (destination side) -----------------------------------
    /// Installs a destination-side receiver for `params.vm_slot`
    /// (replacing — and folding the stats of — any finished one).
    fn attach_receiver(&mut self, params: ReceiverParams);
    /// Queues pages arriving over the wire for the receiver.
    fn deliver_pages(&mut self, pages: Vec<GuestFrame>);
    /// Switches the receiver to post-copy over `outstanding` pages.
    fn begin_post_copy(&mut self, outstanding: Vec<GuestFrame>);
    /// Tells the receiver the source finished sending.
    fn mark_source_done(&mut self);
    /// Whether the receiver (if any) has landed everything.
    fn receiver_complete(&self) -> bool;
    /// Pages the receiver still has to land (inbox + outstanding).
    fn receiver_pending_pages(&self) -> u64;

    // ----- observability --------------------------------------------------
    /// Enables sim-time tracing with the given span capacity.
    fn enable_tracing(&mut self, capacity: usize);
    /// The host's trace sink, when tracing is enabled.
    fn trace_sink(&self) -> Option<&TraceSink>;
}
