//! The cluster's merged view of a run.

use serde::{Deserialize, Serialize};

use hatric::metrics::{HostReport, MigrationStats, SimReport};

/// What happened to one inter-host migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Source host index.
    pub src_host: usize,
    /// Source VM slot.
    pub src_slot: usize,
    /// Destination host index.
    pub dst_host: usize,
    /// Destination VM slot.
    pub dst_slot: usize,
    /// Whether the migration ran post-copy.
    pub post_copy: bool,
    /// The VM's blackout window: stop-and-copy cycles for pre-copy, the
    /// fixed pause/resume hand-off for post-copy.
    pub downtime_cycles: u64,
    /// Whether the hand-off happened before the run ended (pre-copy
    /// converged / post-copy flipped; the residual backlog may still be
    /// draining).
    pub handed_off: bool,
    /// Whether every page also landed on the destination.
    pub drained: bool,
    /// Whether the migration was torn down by a fault (a crashed
    /// endpoint): the source resumed or the VM cold-restarted, and
    /// partial destination state was discarded.
    pub aborted: bool,
    /// Whether a non-convergence timeout force-escalated this pre-copy
    /// to a post-copy flip.
    pub escalated: bool,
    /// Which attempt this was: `0` for a first try, `n` for the `n`-th
    /// bounded retry after an abort.
    pub attempt: u32,
}

/// One crash-driven VM cold restart: the host died, the placement policy
/// re-placed the VM elsewhere with its dirty state lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RestartOutcome {
    /// Host that crashed.
    pub from_host: usize,
    /// Slot the VM occupied there.
    pub from_slot: usize,
    /// Host the VM restarted on.
    pub to_host: usize,
    /// Slot it restarted in.
    pub to_slot: usize,
    /// Epoch of the crash (0-based, warmup included).
    pub epoch: u64,
    /// The restart's unavailability window in cycles (the cluster's
    /// `restart_penalty_cycles`).
    pub downtime_cycles: u64,
}

/// Fleet-level recovery metrics accumulated over the whole run (warmup
/// included — like the migration ledger, recovery is about the fleet's
/// lifetime, not the measured window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Hosts taken down by `HostCrash` faults.
    pub host_crashes: u64,
    /// VMs cold-restarted onto another host after a crash.
    pub vm_restarts: u64,
    /// Crashed VMs the placement policy could not re-place (no alive
    /// host had a free slot).
    pub restarts_failed: u64,
    /// Migrations torn down by a crashed endpoint.
    pub migrations_aborted: u64,
    /// Aborted migrations re-started after their deterministic backoff.
    pub migrations_retried: u64,
    /// Pre-copy migrations force-escalated to post-copy by the
    /// non-convergence timeout.
    pub migrations_escalated: u64,
    /// Host-epochs spent dead (one per crashed host per epoch) — the
    /// fleet's unavailability integral.
    pub unavailability_epochs: u64,
    /// Pages a blacked-out migration link dropped on the floor (each one
    /// re-sent by its source).
    pub wire_dropped_pages: u64,
    /// Fault events fired from the schedule (including events that found
    /// nothing to break, e.g. a stall on a host with no migration).
    pub faults_injected: u64,
}

/// The merged result of a cluster run: per-host [`HostReport`]s plus
/// cluster-level aggregates.
///
/// `aggregate` sums the *mergeable* per-host host-level fields (accesses,
/// coherence, faults, interference, NUMA, paging, latency histograms and
/// the causal ledger — each via its own `merge`); `cycles_per_cpu` is the
/// per-host concatenation in host order, so `runtime_cycles()` is the
/// fleet-wide critical path.  The reconciliation contract — aggregate
/// fields equal the field-wise sum over `per_host` — is enforced by the
/// `tests/cluster.rs` reconciliation test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// One report per host, in host-index order.
    pub per_host: Vec<HostReport>,
    /// Field-wise merge of every host's `host` aggregate.
    pub aggregate: SimReport,
    /// Migration/balloon stats merged over all hosts (source engines and
    /// destination receivers both).
    pub migration: MigrationStats,
    /// One entry per inter-host migration, in start order.
    pub migrations: Vec<MigrationOutcome>,
    /// Largest number of simultaneously in-flight inter-host migrations
    /// observed at any epoch boundary.
    pub peak_inflight: u64,
    /// Fleet-level recovery metrics (crashes, restarts, aborted /
    /// retried / escalated migrations, unavailability).
    pub recovery: RecoveryStats,
    /// One entry per crash-driven VM cold restart, in crash order.
    pub restarts: Vec<RestartOutcome>,
}

impl ClusterReport {
    /// Builds the merged view from per-host reports and the migration
    /// ledger.
    #[must_use]
    pub fn new(
        per_host: Vec<HostReport>,
        migrations: Vec<MigrationOutcome>,
        peak_inflight: u64,
        recovery: RecoveryStats,
        restarts: Vec<RestartOutcome>,
    ) -> Self {
        let mut aggregate = SimReport::default();
        let mut migration = MigrationStats::default();
        for host in &per_host {
            aggregate
                .cycles_per_cpu
                .extend_from_slice(&host.host.cycles_per_cpu);
            aggregate.accesses += host.host.accesses;
            aggregate.coherence.merge(&host.host.coherence);
            aggregate.faults.merge(&host.host.faults);
            aggregate.interference.merge(&host.host.interference);
            aggregate.numa.merge(&host.host.numa);
            aggregate.paging.merge(&host.host.paging);
            aggregate.latency.merge(&host.host.latency);
            aggregate.causal.merge(&host.host.causal);
            migration.merge(&host.migration);
        }
        Self {
            per_host,
            aggregate,
            migration,
            migrations,
            peak_inflight,
            recovery,
            restarts,
        }
    }

    /// Number of hosts.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.per_host.len()
    }

    /// Migrations that handed off (completed their blackout window).
    #[must_use]
    pub fn completed_migrations(&self) -> u64 {
        self.migrations.iter().filter(|m| m.handed_off).count() as u64
    }

    /// Exact `p`-th percentile (0–100) of per-migration downtime over the
    /// handed-off migrations: the smallest downtime ≥ `p`% of the
    /// population (nearest-rank, so `downtime_percentile(100)` is the
    /// maximum).  Zero when nothing handed off.
    #[must_use]
    pub fn downtime_percentile(&self, p: u64) -> u64 {
        let downtimes: Vec<u64> = self
            .migrations
            .iter()
            .filter(|m| m.handed_off)
            .map(|m| m.downtime_cycles)
            .collect();
        nearest_rank(downtimes, p)
    }

    /// Exact `p`-th percentile of *recovery* downtime: the union of every
    /// handed-off migration's blackout window and every crash restart's
    /// unavailability window — the distribution the fault scenario gates
    /// (HATRIC must recover no slower than software shootdowns).  Zero
    /// when nothing handed off and nothing restarted.
    #[must_use]
    pub fn recovery_downtime_percentile(&self, p: u64) -> u64 {
        let mut downtimes: Vec<u64> = self
            .migrations
            .iter()
            .filter(|m| m.handed_off)
            .map(|m| m.downtime_cycles)
            .collect();
        downtimes.extend(self.restarts.iter().map(|r| r.downtime_cycles));
        nearest_rank(downtimes, p)
    }
}

/// Smallest value ≥ `p`% of the population (nearest-rank; zero on an
/// empty population).
fn nearest_rank(mut values: Vec<u64>, p: u64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    values.sort_unstable();
    let rank = (p.min(100) as usize * values.len()).div_ceil(100);
    values[rank.saturating_sub(1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(downtime: u64) -> MigrationOutcome {
        MigrationOutcome {
            src_host: 0,
            src_slot: 0,
            dst_host: 1,
            dst_slot: 0,
            post_copy: false,
            downtime_cycles: downtime,
            handed_off: true,
            drained: true,
            aborted: false,
            escalated: false,
            attempt: 0,
        }
    }

    fn restart(downtime: u64) -> RestartOutcome {
        RestartOutcome {
            from_host: 0,
            from_slot: 0,
            to_host: 1,
            to_slot: 2,
            epoch: 3,
            downtime_cycles: downtime,
        }
    }

    #[test]
    fn downtime_percentile_is_nearest_rank() {
        let migrations: Vec<MigrationOutcome> = (1..=100).map(|n| outcome(n * 10)).collect();
        let report = ClusterReport::new(
            Vec::new(),
            migrations,
            4,
            RecoveryStats::default(),
            Vec::new(),
        );
        assert_eq!(report.downtime_percentile(99), 990);
        assert_eq!(report.downtime_percentile(50), 500);
        assert_eq!(report.downtime_percentile(100), 1000);
    }

    #[test]
    fn recovery_downtime_unions_migrations_and_restarts() {
        let report = ClusterReport::new(
            Vec::new(),
            vec![outcome(100), outcome(200)],
            1,
            RecoveryStats::default(),
            vec![restart(5_000)],
        );
        assert_eq!(
            report.recovery_downtime_percentile(100),
            5_000,
            "the restart's blackout dominates the distribution"
        );
        assert_eq!(report.downtime_percentile(100), 200);
        let empty = ClusterReport::new(
            Vec::new(),
            Vec::new(),
            0,
            RecoveryStats::default(),
            Vec::new(),
        );
        assert_eq!(empty.recovery_downtime_percentile(99), 0);
    }

    #[test]
    fn aggregate_sums_host_fields() {
        let mut a = HostReport::default();
        a.host.accesses = 10;
        a.host.cycles_per_cpu = vec![5, 7];
        a.migration.pages_copied = 3;
        let mut b = HostReport::default();
        b.host.accesses = 32;
        b.host.cycles_per_cpu = vec![9];
        b.migration.received_pages = 2;
        let report = ClusterReport::new(
            vec![a, b],
            Vec::new(),
            0,
            RecoveryStats::default(),
            Vec::new(),
        );
        assert_eq!(report.aggregate.accesses, 42);
        assert_eq!(report.aggregate.cycles_per_cpu, vec![5, 7, 9]);
        assert_eq!(report.migration.pages_copied, 3);
        assert_eq!(report.migration.received_pages, 2);
        assert_eq!(report.downtime_percentile(99), 0, "no migrations ran");
    }
}
