//! The cluster's merged view of a run.

use serde::{Deserialize, Serialize};

use hatric::metrics::{HostReport, MigrationStats, SimReport};

/// What happened to one inter-host migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Source host index.
    pub src_host: usize,
    /// Source VM slot.
    pub src_slot: usize,
    /// Destination host index.
    pub dst_host: usize,
    /// Destination VM slot.
    pub dst_slot: usize,
    /// Whether the migration ran post-copy.
    pub post_copy: bool,
    /// The VM's blackout window: stop-and-copy cycles for pre-copy, the
    /// fixed pause/resume hand-off for post-copy.
    pub downtime_cycles: u64,
    /// Whether the hand-off happened before the run ended (pre-copy
    /// converged / post-copy flipped; the residual backlog may still be
    /// draining).
    pub handed_off: bool,
    /// Whether every page also landed on the destination.
    pub drained: bool,
}

/// The merged result of a cluster run: per-host [`HostReport`]s plus
/// cluster-level aggregates.
///
/// `aggregate` sums the *mergeable* per-host host-level fields (accesses,
/// coherence, faults, interference, NUMA, paging, latency histograms and
/// the causal ledger — each via its own `merge`); `cycles_per_cpu` is the
/// per-host concatenation in host order, so `runtime_cycles()` is the
/// fleet-wide critical path.  The reconciliation contract — aggregate
/// fields equal the field-wise sum over `per_host` — is enforced by the
/// `tests/cluster.rs` reconciliation test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// One report per host, in host-index order.
    pub per_host: Vec<HostReport>,
    /// Field-wise merge of every host's `host` aggregate.
    pub aggregate: SimReport,
    /// Migration/balloon stats merged over all hosts (source engines and
    /// destination receivers both).
    pub migration: MigrationStats,
    /// One entry per inter-host migration, in start order.
    pub migrations: Vec<MigrationOutcome>,
    /// Largest number of simultaneously in-flight inter-host migrations
    /// observed at any epoch boundary.
    pub peak_inflight: u64,
}

impl ClusterReport {
    /// Builds the merged view from per-host reports and the migration
    /// ledger.
    #[must_use]
    pub fn new(
        per_host: Vec<HostReport>,
        migrations: Vec<MigrationOutcome>,
        peak_inflight: u64,
    ) -> Self {
        let mut aggregate = SimReport::default();
        let mut migration = MigrationStats::default();
        for host in &per_host {
            aggregate
                .cycles_per_cpu
                .extend_from_slice(&host.host.cycles_per_cpu);
            aggregate.accesses += host.host.accesses;
            aggregate.coherence.merge(&host.host.coherence);
            aggregate.faults.merge(&host.host.faults);
            aggregate.interference.merge(&host.host.interference);
            aggregate.numa.merge(&host.host.numa);
            aggregate.paging.merge(&host.host.paging);
            aggregate.latency.merge(&host.host.latency);
            aggregate.causal.merge(&host.host.causal);
            migration.merge(&host.migration);
        }
        Self {
            per_host,
            aggregate,
            migration,
            migrations,
            peak_inflight,
        }
    }

    /// Number of hosts.
    #[must_use]
    pub fn hosts(&self) -> usize {
        self.per_host.len()
    }

    /// Migrations that handed off (completed their blackout window).
    #[must_use]
    pub fn completed_migrations(&self) -> u64 {
        self.migrations.iter().filter(|m| m.handed_off).count() as u64
    }

    /// Exact `p`-th percentile (0–100) of per-migration downtime over the
    /// handed-off migrations: the smallest downtime ≥ `p`% of the
    /// population (nearest-rank, so `downtime_percentile(100)` is the
    /// maximum).  Zero when nothing handed off.
    #[must_use]
    pub fn downtime_percentile(&self, p: u64) -> u64 {
        let mut downtimes: Vec<u64> = self
            .migrations
            .iter()
            .filter(|m| m.handed_off)
            .map(|m| m.downtime_cycles)
            .collect();
        if downtimes.is_empty() {
            return 0;
        }
        downtimes.sort_unstable();
        let rank = (p.min(100) as usize * downtimes.len()).div_ceil(100);
        downtimes[rank.saturating_sub(1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(downtime: u64) -> MigrationOutcome {
        MigrationOutcome {
            src_host: 0,
            src_slot: 0,
            dst_host: 1,
            dst_slot: 0,
            post_copy: false,
            downtime_cycles: downtime,
            handed_off: true,
            drained: true,
        }
    }

    #[test]
    fn downtime_percentile_is_nearest_rank() {
        let migrations: Vec<MigrationOutcome> = (1..=100).map(|n| outcome(n * 10)).collect();
        let report = ClusterReport::new(Vec::new(), migrations, 4);
        assert_eq!(report.downtime_percentile(99), 990);
        assert_eq!(report.downtime_percentile(50), 500);
        assert_eq!(report.downtime_percentile(100), 1000);
    }

    #[test]
    fn aggregate_sums_host_fields() {
        let mut a = HostReport::default();
        a.host.accesses = 10;
        a.host.cycles_per_cpu = vec![5, 7];
        a.migration.pages_copied = 3;
        let mut b = HostReport::default();
        b.host.accesses = 32;
        b.host.cycles_per_cpu = vec![9];
        b.migration.received_pages = 2;
        let report = ClusterReport::new(vec![a, b], Vec::new(), 0);
        assert_eq!(report.aggregate.accesses, 42);
        assert_eq!(report.aggregate.cycles_per_cpu, vec![5, 7, 9]);
        assert_eq!(report.migration.pages_copied, 3);
        assert_eq!(report.migration.received_pages, 2);
        assert_eq!(report.downtime_percentile(99), 0, "no migrations ran");
    }
}
