//! # hatric-hypervisor
//!
//! The hypervisor-side substrate: virtual-machine and vCPU bookkeeping
//! (which physical CPUs a VM has ever run on — the only targeting
//! information software translation coherence has), and the die-stacked
//! DRAM paging policies the paper implements inside KVM (Sec. 5.2): FIFO
//! and CLOCK-based pseudo-LRU eviction, a migration daemon that keeps a
//! pool of free fast-memory frames off the critical path, and demand-fetch
//! prefetching of adjacent pages.
//!
//! The policies here are *decision makers*: they say which guest-physical
//! frames to promote into die-stacked memory and which to evict.  The core
//! simulator executes those decisions (copies pages, rewrites the nested
//! page table, triggers translation coherence) and charges their costs.
//!
//! ```
//! use hatric_hypervisor::{PagingConfig, PagingManager, PagingPolicyKind};
//! use hatric_types::GuestFrame;
//!
//! let mut paging = PagingManager::new(PagingConfig {
//!     policy: PagingPolicyKind::ClockLru,
//!     fast_capacity_pages: 2,
//!     migration_daemon: false,
//!     daemon_free_target: 0,
//!     prefetch_pages: 0,
//! });
//! // Two promotions fill fast memory; the third must evict the LRU victim.
//! assert!(paging.on_slow_access(GuestFrame::new(1)).evictions.is_empty());
//! paging.commit_promotion(GuestFrame::new(1));
//! assert!(paging.on_slow_access(GuestFrame::new(2)).evictions.is_empty());
//! paging.commit_promotion(GuestFrame::new(2));
//! paging.on_fast_access(GuestFrame::new(1));
//! let decision = paging.on_slow_access(GuestFrame::new(3));
//! assert_eq!(decision.evictions, vec![GuestFrame::new(2)]);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod paging;
pub mod scheduler;
pub mod vm;

pub use paging::{
    MigrationDecision, NumaPolicy, PagingConfig, PagingManager, PagingPolicyKind, PagingStats,
};
pub use scheduler::{Placement, SchedPolicy, Scheduler};
pub use vm::{HypervisorKind, VirtualMachine, VmConfig};
