//! Die-stacked DRAM paging policies (Sec. 5.2).
//!
//! The hypervisor treats die-stacked DRAM as a fully associative,
//! software-managed cache of hot pages.  On a demand access to a page that
//! currently lives in off-chip DRAM, the page (plus optional prefetch
//! neighbours) is migrated into die-stacked memory; when fast memory is
//! full, victims are selected by FIFO or by a CLOCK approximation of LRU.
//! A *migration daemon* pre-evicts cold pages so that a pool of free frames
//! is available off the critical path.

use std::collections::{HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use hatric_types::{Counter, GuestFrame};

/// NUMA memory-placement policy: on which socket the hypervisor backs a
/// guest page it has to allocate (first touches and paging migrations).
///
/// On a single-socket host the policy is irrelevant — every choice lands on
/// the only socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum NumaPolicy {
    /// Allocate on the socket of the CPU whose access faulted the page in
    /// (Linux's default `local` policy).  Combined with socket-affine vCPU
    /// pinning this keeps a VM's memory entirely socket-local.
    #[default]
    FirstTouch,
    /// Round-robin allocations across all sockets (`numactl --interleave`):
    /// bandwidth spreads over every memory controller, but a fraction
    /// `(sockets-1)/sockets` of all accesses crosses the link.
    Interleaved,
}

/// Victim-selection policy for die-stacked memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PagingPolicyKind {
    /// Evict in the order pages were promoted.
    Fifo,
    /// CLOCK (second-chance) approximation of LRU, as KVM implements by
    /// repurposing Linux's pseudo-LRU machinery.
    #[default]
    ClockLru,
}

/// Paging configuration.
///
/// ```
/// use hatric_hypervisor::PagingConfig;
///
/// let cfg = PagingConfig::best(1_024);
/// assert!(cfg.migration_daemon && cfg.prefetch_pages > 0);
/// assert!(cfg.daemon_free_target < cfg.fast_capacity_pages);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingConfig {
    /// Victim-selection policy.
    pub policy: PagingPolicyKind,
    /// Capacity of die-stacked memory available for guest data, in pages.
    pub fast_capacity_pages: u64,
    /// Whether the migration daemon pre-evicts pages to keep a free pool.
    pub migration_daemon: bool,
    /// Number of free frames the daemon tries to maintain.
    pub daemon_free_target: u64,
    /// Number of adjacent pages to prefetch on a demand migration.
    pub prefetch_pages: usize,
}

impl PagingConfig {
    /// The best-performing combination in the paper (Fig. 8): CLOCK-LRU plus
    /// migration daemon plus prefetching.
    #[must_use]
    pub fn best(fast_capacity_pages: u64) -> Self {
        Self {
            policy: PagingPolicyKind::ClockLru,
            fast_capacity_pages,
            migration_daemon: true,
            daemon_free_target: (fast_capacity_pages / 64).max(4),
            prefetch_pages: 2,
        }
    }

    /// Plain LRU with no daemon and no prefetching (the `lru` bars).
    #[must_use]
    pub fn lru_only(fast_capacity_pages: u64) -> Self {
        Self {
            policy: PagingPolicyKind::ClockLru,
            fast_capacity_pages,
            migration_daemon: false,
            daemon_free_target: 0,
            prefetch_pages: 0,
        }
    }

    /// LRU plus the migration daemon (the `&mig-dmn` bars).
    #[must_use]
    pub fn lru_with_daemon(fast_capacity_pages: u64) -> Self {
        Self {
            migration_daemon: true,
            daemon_free_target: (fast_capacity_pages / 64).max(4),
            ..Self::lru_only(fast_capacity_pages)
        }
    }
}

/// What the policy wants done in response to a slow-memory access.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MigrationDecision {
    /// Guest frames to promote into die-stacked memory (the demanded frame
    /// first, then prefetch candidates).
    pub promotions: Vec<GuestFrame>,
    /// Guest frames to evict from die-stacked memory to make room.
    pub evictions: Vec<GuestFrame>,
}

impl MigrationDecision {
    /// Whether the decision involves any page movement.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.promotions.is_empty() && self.evictions.is_empty()
    }
}

/// Counters describing paging activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PagingStats {
    /// Demand faults on pages in slow memory.
    pub demand_faults: Counter,
    /// Pages promoted to fast memory (demand + prefetch).
    pub promotions: Counter,
    /// Pages evicted from fast memory.
    pub evictions: Counter,
    /// Pages promoted purely by prefetching.
    pub prefetches: Counter,
    /// Eviction batches performed by the migration daemon.
    pub daemon_runs: Counter,
    /// Die-stacked capacity pages taken from this VM by balloon inflation.
    pub balloon_reclaimed: Counter,
    /// Die-stacked capacity pages granted to this VM by balloon deflation.
    pub balloon_granted: Counter,
}

impl PagingStats {
    /// Accumulates `other` into `self` (used when summing per-VM reports).
    pub fn merge(&mut self, other: &PagingStats) {
        self.demand_faults.add(other.demand_faults.get());
        self.promotions.add(other.promotions.get());
        self.evictions.add(other.evictions.get());
        self.prefetches.add(other.prefetches.get());
        self.daemon_runs.add(other.daemon_runs.get());
        self.balloon_reclaimed.add(other.balloon_reclaimed.get());
        self.balloon_granted.add(other.balloon_granted.get());
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ResidentInfo {
    referenced: bool,
}

/// Tracks the contents of die-stacked memory and applies the paging policy.
#[derive(Debug, Clone)]
pub struct PagingManager {
    config: PagingConfig,
    resident: HashMap<GuestFrame, ResidentInfo>,
    queue: VecDeque<GuestFrame>,
    stats: PagingStats,
}

impl PagingManager {
    /// Creates an empty manager (all of fast memory free).
    #[must_use]
    pub fn new(config: PagingConfig) -> Self {
        Self {
            config,
            resident: HashMap::new(),
            queue: VecDeque::new(),
            stats: PagingStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &PagingConfig {
        &self.config
    }

    /// Whether `gpp` currently resides in die-stacked memory.
    #[must_use]
    pub fn is_resident(&self, gpp: GuestFrame) -> bool {
        self.resident.contains_key(&gpp)
    }

    /// Number of pages currently resident in fast memory.
    #[must_use]
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Free fast-memory pages remaining.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        self.config
            .fast_capacity_pages
            .saturating_sub(self.resident_pages())
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PagingStats {
        self.stats
    }

    /// Clears the statistics while keeping the resident set and policy
    /// state intact (called between warmup and measured phases).
    pub fn reset_stats(&mut self) {
        self.stats = PagingStats::default();
    }

    /// Drops `gpp` from the resident set without counting an eviction —
    /// the page's mapping was rolled back (an aborted migration
    /// un-registered its first-touch remap), so it no longer occupies
    /// fast memory.  Returns whether the page was resident.  The CLOCK /
    /// FIFO queue cleans itself lazily: victim selection already skips
    /// entries absent from the resident set.
    pub fn forget(&mut self, gpp: GuestFrame) -> bool {
        self.resident.remove(&gpp).is_some()
    }

    /// Notes an access to a page already resident in fast memory (sets its
    /// reference bit for CLOCK).
    pub fn on_fast_access(&mut self, gpp: GuestFrame) {
        if let Some(info) = self.resident.get_mut(&gpp) {
            info.referenced = true;
        }
    }

    fn select_victim(&mut self) -> Option<GuestFrame> {
        match self.config.policy {
            PagingPolicyKind::Fifo => loop {
                let candidate = self.queue.pop_front()?;
                if self.resident.contains_key(&candidate) {
                    return Some(candidate);
                }
            },
            PagingPolicyKind::ClockLru => {
                // Second-chance: skip referenced pages once, clearing their bit.
                let mut passes = 0;
                while passes < 2 * self.queue.len().max(1) {
                    let candidate = self.queue.pop_front()?;
                    passes += 1;
                    match self.resident.get_mut(&candidate) {
                        Some(info) if info.referenced => {
                            info.referenced = false;
                            self.queue.push_back(candidate);
                        }
                        Some(_) => return Some(candidate),
                        None => {}
                    }
                }
                self.queue.pop_front()
            }
        }
    }

    /// Handles a demand access to a page that lives in slow memory: decides
    /// which pages to promote (demand + prefetch) and which resident pages
    /// must be evicted to make room.  The caller performs the copies and
    /// nested-page-table updates, then calls [`PagingManager::commit_promotion`]
    /// for each promoted frame.
    pub fn on_slow_access(&mut self, gpp: GuestFrame) -> MigrationDecision {
        if self.config.fast_capacity_pages == 0 {
            return MigrationDecision::default();
        }
        self.stats.demand_faults.incr();
        let mut promotions = vec![gpp];
        for i in 1..=self.config.prefetch_pages {
            let neighbour = gpp.offset(i as u64);
            if !self.is_resident(neighbour) {
                promotions.push(neighbour);
            }
        }
        let needed = promotions.len() as u64;
        let evictions = self.evict_victims(needed.saturating_sub(self.free_pages()));
        // Trim promotions if memory is extremely small.
        let capacity = self.config.fast_capacity_pages;
        if needed > capacity {
            promotions.truncate(capacity as usize);
        }
        self.stats
            .prefetches
            .add(promotions.len().saturating_sub(1) as u64);
        MigrationDecision {
            promotions,
            evictions,
        }
    }

    /// Records that a promoted page now resides in fast memory.  The page
    /// starts with a clear reference bit; demand accesses set it via
    /// [`PagingManager::on_fast_access`].
    pub fn commit_promotion(&mut self, gpp: GuestFrame) {
        if self
            .resident
            .insert(gpp, ResidentInfo { referenced: false })
            .is_none()
        {
            self.queue.push_back(gpp);
            self.stats.promotions.incr();
        }
    }

    // ----- ballooning -------------------------------------------------------

    /// Balloon inflation: permanently shrinks this VM's die-stacked
    /// capacity by up to `pages` (clamped to the current capacity) and
    /// selects the victims that must leave fast memory to fit under the new
    /// ceiling.  The caller migrates the victims out (each one an
    /// unmap+remap with translation coherence) and hands the reclaimed
    /// capacity to another VM via [`PagingManager::balloon_grant`].
    /// Returns the evicted frames.
    pub fn balloon_reclaim(&mut self, pages: u64) -> Vec<GuestFrame> {
        let reclaimed = pages.min(self.config.fast_capacity_pages);
        self.config.fast_capacity_pages -= reclaimed;
        self.stats.balloon_reclaimed.add(reclaimed);
        let overage = self
            .resident_pages()
            .saturating_sub(self.config.fast_capacity_pages);
        self.evict_victims(overage)
    }

    /// Balloon deflation: grows this VM's die-stacked capacity by `pages`.
    /// The new room fills through the ordinary demand-promotion path (each
    /// promotion a remap with translation coherence).
    pub fn balloon_grant(&mut self, pages: u64) {
        self.config.fast_capacity_pages += pages;
        self.stats.balloon_granted.add(pages);
    }

    /// Whether the migration daemon should run (free pool below target).
    #[must_use]
    pub fn daemon_should_run(&self) -> bool {
        self.config.migration_daemon && self.free_pages() < self.config.daemon_free_target
    }

    /// Runs the migration daemon: selects enough victims to restore the free
    /// pool.  The caller migrates them out (off the application's critical
    /// path) and they stop being resident immediately.
    pub fn run_daemon(&mut self) -> Vec<GuestFrame> {
        if !self.daemon_should_run() {
            return Vec::new();
        }
        self.stats.daemon_runs.incr();
        let deficit = self.config.daemon_free_target - self.free_pages();
        self.evict_victims(deficit)
    }

    /// Selects, removes and counts up to `count` eviction victims (fewer
    /// if the policy runs out of candidates).  Every eviction path —
    /// demand replacement, the migration daemon, balloon reclaim —
    /// funnels through here so their bookkeeping can never drift apart.
    fn evict_victims(&mut self, count: u64) -> Vec<GuestFrame> {
        let mut victims = Vec::new();
        for _ in 0..count {
            match self.select_victim() {
                Some(victim) => {
                    self.resident.remove(&victim);
                    self.stats.evictions.incr();
                    victims.push(victim);
                }
                None => break,
            }
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager(capacity: u64, policy: PagingPolicyKind) -> PagingManager {
        PagingManager::new(PagingConfig {
            policy,
            fast_capacity_pages: capacity,
            migration_daemon: false,
            daemon_free_target: 0,
            prefetch_pages: 0,
        })
    }

    #[test]
    fn promotion_until_full_requires_no_eviction() {
        let mut m = manager(4, PagingPolicyKind::ClockLru);
        for i in 0..4 {
            let d = m.on_slow_access(GuestFrame::new(i));
            assert!(d.evictions.is_empty());
            m.commit_promotion(GuestFrame::new(i));
        }
        assert_eq!(m.resident_pages(), 4);
        assert_eq!(m.free_pages(), 0);
    }

    #[test]
    fn fifo_evicts_in_promotion_order() {
        let mut m = manager(2, PagingPolicyKind::Fifo);
        m.on_slow_access(GuestFrame::new(1));
        m.commit_promotion(GuestFrame::new(1));
        m.on_slow_access(GuestFrame::new(2));
        m.commit_promotion(GuestFrame::new(2));
        let d = m.on_slow_access(GuestFrame::new(3));
        assert_eq!(d.evictions, vec![GuestFrame::new(1)]);
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_pages() {
        let mut m = manager(2, PagingPolicyKind::ClockLru);
        m.on_slow_access(GuestFrame::new(1));
        m.commit_promotion(GuestFrame::new(1));
        m.on_slow_access(GuestFrame::new(2));
        m.commit_promotion(GuestFrame::new(2));
        // Re-reference page 1 so page 2 becomes the CLOCK victim.
        m.on_fast_access(GuestFrame::new(1));
        let d = m.on_slow_access(GuestFrame::new(3));
        assert_eq!(d.evictions, vec![GuestFrame::new(2)]);
        assert!(m.is_resident(GuestFrame::new(1)));
    }

    #[test]
    fn prefetching_promotes_neighbours() {
        let mut m = PagingManager::new(PagingConfig {
            policy: PagingPolicyKind::ClockLru,
            fast_capacity_pages: 16,
            migration_daemon: false,
            daemon_free_target: 0,
            prefetch_pages: 2,
        });
        let d = m.on_slow_access(GuestFrame::new(10));
        assert_eq!(
            d.promotions,
            vec![
                GuestFrame::new(10),
                GuestFrame::new(11),
                GuestFrame::new(12)
            ]
        );
        assert_eq!(m.stats().prefetches.get(), 2);
    }

    #[test]
    fn daemon_restores_free_pool() {
        let mut m = PagingManager::new(PagingConfig {
            policy: PagingPolicyKind::ClockLru,
            fast_capacity_pages: 8,
            migration_daemon: true,
            daemon_free_target: 3,
            prefetch_pages: 0,
        });
        for i in 0..8 {
            m.on_slow_access(GuestFrame::new(i));
            m.commit_promotion(GuestFrame::new(i));
        }
        assert!(m.daemon_should_run());
        let victims = m.run_daemon();
        assert_eq!(victims.len(), 3);
        assert_eq!(m.free_pages(), 3);
        assert!(!m.daemon_should_run());
    }

    #[test]
    fn zero_capacity_never_migrates() {
        let mut m = manager(0, PagingPolicyKind::ClockLru);
        let d = m.on_slow_access(GuestFrame::new(1));
        assert!(d.is_empty());
    }

    #[test]
    fn balloon_reclaim_shrinks_capacity_and_evicts_to_fit() {
        let mut m = manager(8, PagingPolicyKind::Fifo);
        for i in 0..8 {
            m.on_slow_access(GuestFrame::new(i));
            m.commit_promotion(GuestFrame::new(i));
        }
        let victims = m.balloon_reclaim(3);
        assert_eq!(m.config().fast_capacity_pages, 5);
        assert_eq!(
            victims,
            vec![GuestFrame::new(0), GuestFrame::new(1), GuestFrame::new(2)]
        );
        assert_eq!(m.resident_pages(), 5);
        assert_eq!(m.stats().balloon_reclaimed.get(), 3);
        assert_eq!(m.stats().evictions.get(), 3);
        // Reclaim is clamped to what is left.
        let victims = m.balloon_reclaim(100);
        assert_eq!(m.config().fast_capacity_pages, 0);
        assert_eq!(victims.len(), 5);
        assert_eq!(m.stats().balloon_reclaimed.get(), 8);
    }

    #[test]
    fn balloon_grant_makes_room_without_evictions() {
        let mut m = manager(1, PagingPolicyKind::ClockLru);
        m.on_slow_access(GuestFrame::new(1));
        m.commit_promotion(GuestFrame::new(1));
        m.balloon_grant(2);
        assert_eq!(m.config().fast_capacity_pages, 3);
        assert_eq!(m.free_pages(), 2);
        assert_eq!(m.stats().balloon_granted.get(), 2);
        let d = m.on_slow_access(GuestFrame::new(2));
        assert!(d.evictions.is_empty(), "granted room absorbs the promotion");
    }

    #[test]
    fn merge_covers_every_counter_including_balloon_fields() {
        let mut m = PagingManager::new(PagingConfig {
            policy: PagingPolicyKind::ClockLru,
            fast_capacity_pages: 4,
            migration_daemon: true,
            daemon_free_target: 2,
            prefetch_pages: 1,
        });
        for i in [0u64, 4, 8, 12] {
            m.on_slow_access(GuestFrame::new(i));
            m.commit_promotion(GuestFrame::new(i));
        }
        m.run_daemon();
        m.balloon_reclaim(1);
        m.balloon_grant(2);
        let stats = m.stats();
        let mut merged = PagingStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        // Every field doubles — a field forgotten by merge() stays zero and
        // fails its own comparison.
        assert_eq!(merged.demand_faults.get(), 2 * stats.demand_faults.get());
        assert_eq!(merged.promotions.get(), 2 * stats.promotions.get());
        assert_eq!(merged.evictions.get(), 2 * stats.evictions.get());
        assert_eq!(merged.prefetches.get(), 2 * stats.prefetches.get());
        assert_eq!(merged.daemon_runs.get(), 2 * stats.daemon_runs.get());
        assert_eq!(
            merged.balloon_reclaimed.get(),
            2 * stats.balloon_reclaimed.get()
        );
        assert_eq!(
            merged.balloon_granted.get(),
            2 * stats.balloon_granted.get()
        );
        assert!(stats.balloon_reclaimed.get() > 0 && stats.balloon_granted.get() > 0);
        assert!(stats.daemon_runs.get() > 0 && stats.prefetches.get() > 0);
    }

    #[test]
    fn stats_count_faults_and_evictions() {
        let mut m = manager(1, PagingPolicyKind::Fifo);
        m.on_slow_access(GuestFrame::new(1));
        m.commit_promotion(GuestFrame::new(1));
        m.on_slow_access(GuestFrame::new(2));
        m.commit_promotion(GuestFrame::new(2));
        assert_eq!(m.stats().demand_faults.get(), 2);
        assert_eq!(m.stats().evictions.get(), 1);
        assert_eq!(m.stats().promotions.get(), 2);
    }
}
