//! Virtual machines, vCPUs and their placement on physical CPUs.

use serde::{Deserialize, Serialize};

use hatric_types::{AddressSpaceId, CpuId, VcpuId, VmId};

/// Which hypervisor flavour manages the VM (affects shootdown costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HypervisorKind {
    /// Linux KVM (the paper's primary platform).
    #[default]
    Kvm,
    /// Xen (evaluated in Sec. 6 for generality).
    Xen,
}

/// Static configuration of one VM.
///
/// ```
/// use hatric_hypervisor::{VirtualMachine, VmConfig};
/// use hatric_types::{CpuId, VmId};
///
/// let vm = VirtualMachine::new(VmConfig {
///     vm: VmId::new(0),
///     vcpus: 2,
///     first_cpu: CpuId::new(4),
/// });
/// // Static affinity: vCPU i starts on first_cpu + i.
/// assert_eq!(vm.cpus_ever_used(), &[CpuId::new(4), CpuId::new(5)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// The VM's identifier.
    pub vm: VmId,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// Physical CPU that vCPU 0 is pinned to; vCPU *i* is pinned to
    /// `first_cpu + i` (simple static affinity, as in the paper's setup
    /// where vCPU count matches the CPUs given to the VM).
    pub first_cpu: CpuId,
}

/// Runtime state of a VM: vCPU placement and the targeting information the
/// hypervisor has for translation coherence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualMachine {
    config: VmConfig,
    /// Physical CPUs this VM has ever executed on.  Software translation
    /// coherence conservatively targets all of them (Sec. 3.2).
    cpus_ever_used: Vec<CpuId>,
    /// Physical CPUs currently executing a vCPU in guest mode.
    running_guest: Vec<CpuId>,
    /// Where each vCPU currently executes (`None` while descheduled).  A
    /// freshly created VM starts with the static affine placement.
    placement: Vec<Option<CpuId>>,
}

impl VirtualMachine {
    /// Creates a VM with all vCPUs scheduled on their pinned CPUs.
    #[must_use]
    pub fn new(config: VmConfig) -> Self {
        let cpus: Vec<CpuId> = (0..config.vcpus)
            .map(|i| CpuId::new(config.first_cpu.raw() + i as u32))
            .collect();
        Self {
            cpus_ever_used: cpus.clone(),
            placement: cpus.iter().copied().map(Some).collect(),
            running_guest: cpus,
            config,
        }
    }

    /// Creates a VM with no vCPU placed anywhere yet — the starting state on
    /// a scheduled host, where a scheduler assigns CPUs slice by slice via
    /// [`VirtualMachine::place`].  `config.first_cpu` is kept only as the
    /// static-affinity fallback of [`VirtualMachine::cpu_of`].
    #[must_use]
    pub fn unplaced(config: VmConfig) -> Self {
        Self {
            cpus_ever_used: Vec::new(),
            running_guest: Vec::new(),
            placement: vec![None; config.vcpus],
            config,
        }
    }

    /// The VM's identifier.
    #[must_use]
    pub fn id(&self) -> VmId {
        self.config.vm
    }

    /// Number of vCPUs.
    #[must_use]
    pub fn vcpu_count(&self) -> usize {
        self.config.vcpus
    }

    /// The physical CPU that `vcpu` is statically pinned to (the affine
    /// placement a freshly created VM starts with).  On a scheduled host the
    /// *current* position is [`VirtualMachine::current_cpu_of`].
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    #[must_use]
    pub fn cpu_of(&self, vcpu: VcpuId) -> CpuId {
        assert!(vcpu.index() < self.config.vcpus, "unknown {vcpu}");
        CpuId::new(self.config.first_cpu.raw() + vcpu.raw())
    }

    /// The physical CPU `vcpu` currently executes on, or `None` while it is
    /// descheduled.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    #[must_use]
    pub fn current_cpu_of(&self, vcpu: VcpuId) -> Option<CpuId> {
        assert!(vcpu.index() < self.config.vcpus, "unknown {vcpu}");
        self.placement[vcpu.index()]
    }

    /// Schedules `vcpu` onto `cpu` for the coming time slice, remembering
    /// the CPU in the ever-used set software shootdowns target.
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    pub fn place(&mut self, vcpu: VcpuId, cpu: CpuId) {
        assert!(vcpu.index() < self.config.vcpus, "unknown {vcpu}");
        if let Some(old) = self.placement[vcpu.index()].replace(cpu) {
            if old != cpu {
                self.forget_running(old);
            }
        }
        if !self.running_guest.contains(&cpu) {
            self.running_guest.push(cpu);
        }
        if !self.cpus_ever_used.contains(&cpu) {
            self.cpus_ever_used.push(cpu);
        }
    }

    /// Takes `vcpu` off its CPU at the end of a time slice.  The CPU stays
    /// in the ever-used set (software coherence still has to IPI it).
    ///
    /// # Panics
    ///
    /// Panics if `vcpu` is out of range.
    pub fn deschedule(&mut self, vcpu: VcpuId) {
        assert!(vcpu.index() < self.config.vcpus, "unknown {vcpu}");
        if let Some(cpu) = self.placement[vcpu.index()].take() {
            self.forget_running(cpu);
        }
    }

    /// Drops `cpu` from `running_guest` unless another vCPU still sits there.
    fn forget_running(&mut self, cpu: CpuId) {
        if !self.placement.contains(&Some(cpu)) {
            self.running_guest.retain(|&c| c != cpu);
        }
    }

    /// The vCPU currently placed on physical CPU `cpu`, if any belongs to
    /// this VM.  Answers from the live placement, so it stays correct on a
    /// scheduled host where vCPUs migrate off their static pins.
    #[must_use]
    pub fn vcpu_on(&self, cpu: CpuId) -> Option<VcpuId> {
        self.placement
            .iter()
            .position(|p| *p == Some(cpu))
            .map(|i| VcpuId::new(i as u32))
    }

    /// Physical CPUs this VM has ever executed on (software coherence
    /// targets).
    #[must_use]
    pub fn cpus_ever_used(&self) -> &[CpuId] {
        &self.cpus_ever_used
    }

    /// Physical CPUs currently executing the VM in guest mode (these suffer
    /// VM exits when an IPI arrives).
    #[must_use]
    pub fn running_guest(&self) -> &[CpuId] {
        &self.running_guest
    }

    /// Marks a CPU as having entered/left guest mode for this VM.
    pub fn set_guest_mode(&mut self, cpu: CpuId, in_guest: bool) {
        if in_guest {
            if !self.running_guest.contains(&cpu) {
                self.running_guest.push(cpu);
            }
            if !self.cpus_ever_used.contains(&cpu) {
                self.cpus_ever_used.push(cpu);
            }
        } else {
            self.running_guest.retain(|&c| c != cpu);
        }
    }

    /// Address space used by guest process `process_index` inside this VM.
    /// Multiprogrammed workloads give each application its own address
    /// space; the hypervisor cannot tell them apart when flushing, which is
    /// the Fig. 10 problem.
    #[must_use]
    pub fn address_space(&self, process_index: usize) -> AddressSpaceId {
        AddressSpaceId::new(self.config.vm.raw() * 1_000 + process_index as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm() -> VirtualMachine {
        VirtualMachine::new(VmConfig {
            vm: VmId::new(1),
            vcpus: 4,
            first_cpu: CpuId::new(8),
        })
    }

    #[test]
    fn vcpu_to_cpu_mapping_is_affine() {
        let vm = vm();
        assert_eq!(vm.cpu_of(VcpuId::new(0)), CpuId::new(8));
        assert_eq!(vm.cpu_of(VcpuId::new(3)), CpuId::new(11));
        assert_eq!(vm.vcpu_on(CpuId::new(9)), Some(VcpuId::new(1)));
        assert_eq!(vm.vcpu_on(CpuId::new(3)), None);
    }

    #[test]
    fn all_pinned_cpus_are_initially_running_and_remembered() {
        let vm = vm();
        assert_eq!(vm.cpus_ever_used().len(), 4);
        assert_eq!(vm.running_guest().len(), 4);
    }

    #[test]
    fn guest_mode_tracking() {
        let mut vm = vm();
        vm.set_guest_mode(CpuId::new(9), false);
        assert_eq!(vm.running_guest().len(), 3);
        // Leaving guest mode does not forget the CPU for targeting purposes.
        assert_eq!(vm.cpus_ever_used().len(), 4);
        vm.set_guest_mode(CpuId::new(20), true);
        assert!(vm.cpus_ever_used().contains(&CpuId::new(20)));
    }

    #[test]
    fn address_spaces_are_distinct_per_process() {
        let vm = vm();
        assert_ne!(vm.address_space(0), vm.address_space(1));
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn out_of_range_vcpu_panics() {
        let _ = vm().cpu_of(VcpuId::new(9));
    }

    #[test]
    fn placement_migration_accumulates_ever_used_cpus() {
        let mut vm = vm();
        assert_eq!(vm.current_cpu_of(VcpuId::new(0)), Some(CpuId::new(8)));
        vm.place(VcpuId::new(0), CpuId::new(30));
        assert_eq!(vm.current_cpu_of(VcpuId::new(0)), Some(CpuId::new(30)));
        // The old CPU is no longer running this VM but stays targetable.
        assert!(!vm.running_guest().contains(&CpuId::new(8)));
        assert!(vm.cpus_ever_used().contains(&CpuId::new(8)));
        assert!(vm.cpus_ever_used().contains(&CpuId::new(30)));
    }

    #[test]
    fn deschedule_clears_placement_but_not_targeting() {
        let mut vm = vm();
        vm.deschedule(VcpuId::new(2));
        assert_eq!(vm.current_cpu_of(VcpuId::new(2)), None);
        assert!(!vm.running_guest().contains(&CpuId::new(10)));
        assert!(vm.cpus_ever_used().contains(&CpuId::new(10)));
        assert_eq!(vm.cpus_ever_used().len(), 4);
    }

    #[test]
    fn shared_cpu_stays_running_until_both_vcpus_leave() {
        let mut vm = vm();
        // Move vCPU 1 onto vCPU 0's CPU, then deschedule one of them.
        vm.place(VcpuId::new(1), CpuId::new(8));
        vm.deschedule(VcpuId::new(0));
        assert!(vm.running_guest().contains(&CpuId::new(8)));
        vm.deschedule(VcpuId::new(1));
        assert!(!vm.running_guest().contains(&CpuId::new(8)));
    }
}
