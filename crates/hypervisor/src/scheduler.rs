//! vCPU → pCPU scheduling for a consolidated host.
//!
//! The paper's software-shootdown costs depend critically on *where* a VM's
//! vCPUs have run: KVM IPIs every physical CPU the VM ever touched, so the
//! scheduling policy determines how many innocent bystanders a remap
//! disrupts.  This module provides the two policies the multi-VM
//! experiments need:
//!
//! * [`SchedPolicy::Pinned`] — static affinity: every vCPU is pinned to one
//!   physical CPU forever.  Oversubscribed pCPUs time-slice their pinned
//!   vCPUs round-robin.  A VM's `cpus_ever_used` set stays minimal, so
//!   software shootdowns stay as narrow as they can be.
//! * [`SchedPolicy::RoundRobin`] — a global run queue: each slice the next
//!   `num_pcpus` runnable vCPUs are dealt out across the CPUs.  vCPUs
//!   migrate freely, every VM eventually touches every CPU, and software
//!   shootdowns degenerate into machine-wide IPI storms — the consolidation
//!   worst case HATRIC is designed to eliminate.
//! * [`SchedPolicy::SocketAffine`] — NUMA-aware pinning: every VM has a
//!   *home socket* and its vCPUs are dealt out (and time-sliced) across
//!   that socket's CPUs only.  Built with [`Scheduler::socket_affine`];
//!   combined with first-touch allocation it keeps each VM's memory and
//!   shootdown blast radius socket-local.
//!
//! Invariant (property-tested): within one slice, a physical CPU executes
//! at most one vCPU and a vCPU is placed at most once.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use hatric_types::{CpuId, VcpuId};

/// Which scheduling policy the host uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedPolicy {
    /// Static vCPU→pCPU affinity with per-CPU time slicing.
    #[default]
    Pinned,
    /// Global round-robin run queue; vCPUs migrate across CPUs.
    RoundRobin,
    /// Static affinity confined to each VM's home socket (NUMA-aware
    /// pinning).  Requires the socket topology: build the scheduler with
    /// [`Scheduler::socket_affine`]; [`Scheduler::new`] (which has no
    /// topology) degenerates to [`SchedPolicy::Pinned`] deal-out.
    SocketAffine,
}

/// One scheduling decision: VM `vm_slot`'s `vcpu` runs on `pcpu` this slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// The physical CPU granted for the slice.
    pub pcpu: CpuId,
    /// Host slot of the VM that owns the vCPU.
    pub vm_slot: usize,
    /// The vCPU being scheduled.
    pub vcpu: VcpuId,
}

/// The host's vCPU scheduler.
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedPolicy,
    num_pcpus: usize,
    total_vcpus: usize,
    /// `Pinned`: per-pCPU list of vCPUs pinned there.
    pinned: Vec<Vec<(usize, VcpuId)>>,
    /// `Pinned`: next index to run in each pCPU's pinned list.
    pinned_next: Vec<usize>,
    /// `RoundRobin`: the global run queue.
    queue: VecDeque<(usize, VcpuId)>,
    /// Slices produced so far (drives CPU-assignment rotation).
    slice: u64,
    /// Fully-paused VMs (stop-and-copy): none of their vCPUs may be placed.
    paused: Vec<bool>,
}

impl Scheduler {
    /// Creates a scheduler for `num_pcpus` physical CPUs over the VMs whose
    /// vCPU counts are given (indexed by VM slot).  vCPUs are enumerated
    /// VM-major, and pinning deals them out across CPUs in that order.
    ///
    /// # Panics
    ///
    /// Panics if `num_pcpus` is zero or no VM has any vCPU.
    #[must_use]
    pub fn new(policy: SchedPolicy, num_pcpus: usize, vcpu_counts: &[usize]) -> Self {
        assert!(num_pcpus > 0, "a host needs at least one physical CPU");
        let all: Vec<(usize, VcpuId)> = vcpu_counts
            .iter()
            .enumerate()
            .flat_map(|(slot, &n)| (0..n).map(move |v| (slot, VcpuId::new(v as u32))))
            .collect();
        assert!(!all.is_empty(), "a host needs at least one vCPU");
        let mut pinned = vec![Vec::new(); num_pcpus];
        for (i, entry) in all.iter().enumerate() {
            pinned[i % num_pcpus].push(*entry);
        }
        Self::from_pinned(policy, num_pcpus, vcpu_counts.len(), pinned, all)
    }

    /// Creates a NUMA-aware socket-affine scheduler: the `num_pcpus`
    /// physical CPUs are split into `sockets` contiguous equal blocks, and
    /// VM `slot`'s vCPUs are dealt out across the CPUs of socket
    /// `home_sockets[slot]` only (time-slicing within the socket when
    /// oversubscribed).  The policy reported is
    /// [`SchedPolicy::SocketAffine`].
    ///
    /// # Panics
    ///
    /// Panics if `num_pcpus` is not a positive multiple of `sockets`, if no
    /// VM has any vCPU, if `home_sockets` is shorter than `vcpu_counts`, or
    /// if any home socket is out of range.
    #[must_use]
    pub fn socket_affine(
        num_pcpus: usize,
        vcpu_counts: &[usize],
        home_sockets: &[usize],
        sockets: usize,
    ) -> Self {
        assert!(sockets > 0, "a host needs at least one socket");
        assert!(
            num_pcpus > 0 && num_pcpus.is_multiple_of(sockets),
            "physical CPUs must split evenly across sockets"
        );
        assert!(
            home_sockets.len() >= vcpu_counts.len(),
            "every VM needs a home socket"
        );
        let cpus_per_socket = num_pcpus / sockets;
        let all: Vec<(usize, VcpuId)> = vcpu_counts
            .iter()
            .enumerate()
            .flat_map(|(slot, &n)| (0..n).map(move |v| (slot, VcpuId::new(v as u32))))
            .collect();
        assert!(!all.is_empty(), "a host needs at least one vCPU");
        let mut pinned = vec![Vec::new(); num_pcpus];
        // Per-socket deal-out cursor, so co-homed VMs spread across their
        // socket's CPUs the same way the flat deal-out spreads across all.
        let mut socket_cursor = vec![0usize; sockets];
        for &(slot, vcpu) in &all {
            let home = home_sockets[slot];
            assert!(home < sockets, "home socket {home} out of range");
            let cpu = home * cpus_per_socket + socket_cursor[home] % cpus_per_socket;
            socket_cursor[home] += 1;
            pinned[cpu].push((slot, vcpu));
        }
        Self::from_pinned(
            SchedPolicy::SocketAffine,
            num_pcpus,
            vcpu_counts.len(),
            pinned,
            all,
        )
    }

    fn from_pinned(
        policy: SchedPolicy,
        num_pcpus: usize,
        num_vms: usize,
        pinned: Vec<Vec<(usize, VcpuId)>>,
        all: Vec<(usize, VcpuId)>,
    ) -> Self {
        // Stagger the initial rotation offsets so co-pinned VMs interleave
        // across CPUs instead of running in lockstep phases — on a real host
        // nothing synchronises the per-CPU run queues either.
        let pinned_next = pinned
            .iter()
            .enumerate()
            .map(|(p, list)| if list.is_empty() { 0 } else { p % list.len() })
            .collect();
        Self {
            policy,
            num_pcpus,
            total_vcpus: all.len(),
            pinned,
            pinned_next,
            queue: all.into(),
            slice: 0,
            paused: vec![false; num_vms],
        }
    }

    /// Fully pauses or resumes VM `vm_slot`: while paused, none of its
    /// vCPUs is ever placed (the stop-and-copy phase of a live migration
    /// runs with the VM frozen).  Pausing a VM does not affect other VMs'
    /// rotation or starvation-freedom.
    ///
    /// # Panics
    ///
    /// Panics if `vm_slot` is out of range.
    pub fn set_vm_paused(&mut self, vm_slot: usize, paused: bool) {
        self.paused[vm_slot] = paused;
    }

    /// Whether VM `vm_slot` is currently fully paused.
    ///
    /// # Panics
    ///
    /// Panics if `vm_slot` is out of range.
    #[must_use]
    pub fn vm_paused(&self, vm_slot: usize) -> bool {
        self.paused[vm_slot]
    }

    /// The policy in use.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Total vCPUs across all VMs.
    #[must_use]
    pub fn total_vcpus(&self) -> usize {
        self.total_vcpus
    }

    /// Whether more vCPUs exist than physical CPUs (some vCPU always waits).
    #[must_use]
    pub fn is_oversubscribed(&self) -> bool {
        self.total_vcpus > self.num_pcpus
    }

    /// The static pCPU that `Pinned` assigns to VM `vm_slot`'s `vcpu`, if it
    /// exists.
    #[must_use]
    pub fn pinned_cpu_of(&self, vm_slot: usize, vcpu: VcpuId) -> Option<CpuId> {
        self.pinned.iter().enumerate().find_map(|(p, list)| {
            list.iter()
                .any(|&(s, v)| s == vm_slot && v == vcpu)
                .then(|| CpuId::new(p as u32))
        })
    }

    /// Produces the placements for the next time slice.  Every physical CPU
    /// appears at most once, and every vCPU appears at most once; CPUs with
    /// nothing runnable are left out (idle).
    pub fn next_slice(&mut self) -> Vec<Placement> {
        let mut placements = Vec::with_capacity(self.num_pcpus);
        self.next_slice_into(&mut placements);
        placements
    }

    /// Like [`Scheduler::next_slice`] but writes into a caller-owned buffer
    /// (cleared first), so the per-slice hot loop allocates nothing.
    pub fn next_slice_into(&mut self, out: &mut Vec<Placement>) {
        out.clear();
        match self.policy {
            SchedPolicy::Pinned | SchedPolicy::SocketAffine => {
                for (p, list) in self.pinned.iter().enumerate() {
                    if list.is_empty() {
                        continue;
                    }
                    // First runnable (non-paused) vCPU in rotation order;
                    // the CPU idles if everything pinned here is paused.
                    let chosen = (0..list.len())
                        .map(|k| (self.pinned_next[p] + k) % list.len())
                        .find(|&idx| !self.paused[list[idx].0]);
                    let Some(idx) = chosen else { continue };
                    self.pinned_next[p] = (idx + 1) % list.len();
                    let (vm_slot, vcpu) = list[idx];
                    out.push(Placement {
                        pcpu: CpuId::new(p as u32),
                        vm_slot,
                        vcpu,
                    });
                }
            }
            SchedPolicy::RoundRobin => {
                // Rotate the CPU assignment by one each slice: the strict
                // FIFO queue keeps scheduling starvation-free, while the
                // rotation makes vCPUs genuinely migrate across CPUs — which
                // is what inflates a VM's `cpus_ever_used` set and with it
                // the blast radius of software shootdowns.  Paused VMs'
                // vCPUs keep rotating through the queue but are never
                // placed; each queue entry is inspected at most once per
                // slice, so runnable vCPUs stay starvation-free.
                let offset = (self.slice as usize) % self.num_pcpus;
                for _ in 0..self.queue.len() {
                    if out.len() == self.num_pcpus {
                        break;
                    }
                    let (vm_slot, vcpu) =
                        self.queue.pop_front().expect("queue length checked above");
                    if !self.paused[vm_slot] {
                        out.push(Placement {
                            pcpu: CpuId::new(((out.len() + offset) % self.num_pcpus) as u32),
                            vm_slot,
                            vcpu,
                        });
                    }
                    self.queue.push_back((vm_slot, vcpu));
                }
            }
        }
        self.slice += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_valid_slice(placements: &[Placement]) {
        let cpus: HashSet<_> = placements.iter().map(|p| p.pcpu).collect();
        assert_eq!(cpus.len(), placements.len(), "pCPU double-booked");
        let vcpus: HashSet<_> = placements.iter().map(|p| (p.vm_slot, p.vcpu)).collect();
        assert_eq!(vcpus.len(), placements.len(), "vCPU scheduled twice");
    }

    #[test]
    fn pinned_undersubscribed_gives_every_vcpu_its_own_cpu() {
        let mut s = Scheduler::new(SchedPolicy::Pinned, 4, &[2, 2]);
        assert!(!s.is_oversubscribed());
        let slice = s.next_slice();
        assert_eq!(slice.len(), 4);
        assert_valid_slice(&slice);
        // Placement is stable across slices.
        assert_eq!(s.next_slice(), slice);
    }

    #[test]
    fn pinned_oversubscribed_time_slices_each_cpu() {
        // 2 VMs x 2 vCPUs on 2 pCPUs: each pCPU alternates its two pinned
        // vCPUs, which belong to different VMs (VM-major deal-out).
        let mut s = Scheduler::new(SchedPolicy::Pinned, 2, &[2, 2]);
        assert!(s.is_oversubscribed());
        let a = s.next_slice();
        let b = s.next_slice();
        assert_valid_slice(&a);
        assert_valid_slice(&b);
        assert_ne!(a, b, "oversubscribed pCPUs must rotate occupants");
        let c = s.next_slice();
        assert_eq!(a, c, "two pinned vCPUs alternate with period 2");
        // Both VMs appear on pCPU 0 over time (shared CPU -> bystander risk).
        let on_cpu0: HashSet<_> = [a[0].vm_slot, b[0].vm_slot].into();
        assert_eq!(on_cpu0.len(), 2);
    }

    #[test]
    fn round_robin_migrates_vcpus_across_cpus() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 2, &[1, 1, 1]);
        let mut seen_cpus: HashSet<(usize, u32)> = HashSet::new();
        for _ in 0..6 {
            for p in s.next_slice() {
                assert!(p.pcpu.index() < 2);
                seen_cpus.insert((p.vm_slot, p.pcpu.raw()));
            }
        }
        // With 3 vCPUs on 2 CPUs, rotation makes every VM visit both CPUs.
        for slot in 0..3 {
            assert!(seen_cpus.contains(&(slot, 0)), "vm{slot} never ran on cpu0");
            assert!(seen_cpus.contains(&(slot, 1)), "vm{slot} never ran on cpu1");
        }
    }

    #[test]
    fn pinned_cpu_lookup_matches_dealt_positions() {
        let s = Scheduler::new(SchedPolicy::Pinned, 4, &[2, 2]);
        assert_eq!(s.pinned_cpu_of(0, VcpuId::new(0)), Some(CpuId::new(0)));
        assert_eq!(s.pinned_cpu_of(0, VcpuId::new(1)), Some(CpuId::new(1)));
        assert_eq!(s.pinned_cpu_of(1, VcpuId::new(0)), Some(CpuId::new(2)));
        assert_eq!(s.pinned_cpu_of(1, VcpuId::new(5)), None);
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn rejects_empty_vm_set() {
        let _ = Scheduler::new(SchedPolicy::Pinned, 2, &[]);
    }

    #[test]
    fn paused_vm_is_never_placed_and_resumes_cleanly() {
        for policy in [SchedPolicy::Pinned, SchedPolicy::RoundRobin] {
            let mut s = Scheduler::new(policy, 2, &[2, 2]);
            s.set_vm_paused(0, true);
            assert!(s.vm_paused(0));
            for _ in 0..6 {
                let slice = s.next_slice();
                assert_valid_slice(&slice);
                assert!(
                    slice.iter().all(|p| p.vm_slot != 0),
                    "{policy:?} placed a vCPU of the paused VM"
                );
                // The other VM keeps the host busy.
                assert!(!slice.is_empty());
            }
            s.set_vm_paused(0, false);
            let mut seen = HashSet::new();
            for _ in 0..6 {
                for p in s.next_slice() {
                    seen.insert(p.vm_slot);
                }
            }
            assert!(seen.contains(&0), "{policy:?} never resumed the VM");
        }
    }

    #[test]
    fn socket_affine_confines_vcpus_to_the_home_socket() {
        // 8 CPUs, 2 sockets: VM0 homed on socket 0 (cpus 0-3), VM1 and VM2
        // homed on socket 1 (cpus 4-7).
        let mut s = Scheduler::socket_affine(8, &[2, 2, 2], &[0, 1, 1], 2);
        assert_eq!(s.policy(), SchedPolicy::SocketAffine);
        for _ in 0..8 {
            let slice = s.next_slice();
            assert_valid_slice(&slice);
            for p in &slice {
                let socket = p.pcpu.index() / 4;
                let home = if p.vm_slot == 0 { 0 } else { 1 };
                assert_eq!(
                    socket,
                    home,
                    "vm{} placed on cpu{} outside its home socket",
                    p.vm_slot,
                    p.pcpu.index()
                );
            }
        }
    }

    #[test]
    fn socket_affine_time_slices_an_oversubscribed_socket() {
        // Both VMs homed on socket 0 of a 2-socket host: its 2 CPUs carry 4
        // vCPUs, so occupants must rotate, and socket 1 idles.
        let mut s = Scheduler::socket_affine(4, &[2, 2], &[0, 0], 2);
        let a = s.next_slice();
        let b = s.next_slice();
        assert_valid_slice(&a);
        assert_ne!(a, b, "oversubscribed socket CPUs must rotate occupants");
        for p in a.iter().chain(&b) {
            assert!(p.pcpu.index() < 2, "socket 1 must stay idle");
        }
    }

    #[test]
    #[should_panic(expected = "split evenly")]
    fn socket_affine_rejects_indivisible_topology() {
        let _ = Scheduler::socket_affine(6, &[1], &[0], 4);
    }

    #[test]
    fn pausing_everything_idles_the_host() {
        let mut s = Scheduler::new(SchedPolicy::RoundRobin, 2, &[1, 1]);
        s.set_vm_paused(0, true);
        s.set_vm_paused(1, true);
        assert!(s.next_slice().is_empty());
    }
}
