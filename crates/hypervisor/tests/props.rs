//! Property-based tests for the vCPU scheduler: under any mix of VM sizes,
//! CPU counts and policies, a slice never double-books a physical CPU and
//! never schedules the same vCPU twice.

use proptest::prelude::*;
use std::collections::HashSet;

use hatric_hypervisor::{SchedPolicy, Scheduler};

fn policy_strategy() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        (0u8..1).prop_map(|_| SchedPolicy::Pinned),
        (0u8..1).prop_map(|_| SchedPolicy::RoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: no two runnable vCPUs share a pCPU within a
    /// slice, and no vCPU runs on two pCPUs at once.
    #[test]
    fn slices_never_double_book(
        policy in policy_strategy(),
        num_pcpus in 1usize..16,
        vcpu_counts in proptest::collection::vec(1usize..5, 1..6),
        slices in 1usize..40,
    ) {
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        for _ in 0..slices {
            let placements = sched.next_slice();
            prop_assert!(placements.len() <= num_pcpus);
            let cpus: HashSet<_> = placements.iter().map(|p| p.pcpu).collect();
            prop_assert_eq!(cpus.len(), placements.len(), "pCPU double-booked");
            let vcpus: HashSet<_> =
                placements.iter().map(|p| (p.vm_slot, p.vcpu)).collect();
            prop_assert_eq!(vcpus.len(), placements.len(), "vCPU scheduled twice");
            for p in &placements {
                prop_assert!(p.pcpu.index() < num_pcpus);
                prop_assert!(p.vm_slot < vcpu_counts.len());
                prop_assert!(p.vcpu.index() < vcpu_counts[p.vm_slot]);
            }
        }
    }

    /// Work conservation: as long as runnable vCPUs exist, either every
    /// pCPU is busy or every vCPU is placed.
    #[test]
    fn slices_are_work_conserving(
        policy in policy_strategy(),
        num_pcpus in 1usize..12,
        vcpu_counts in proptest::collection::vec(1usize..4, 1..5),
    ) {
        let total: usize = vcpu_counts.iter().sum();
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        for _ in 0..8 {
            let placements = sched.next_slice();
            prop_assert_eq!(placements.len(), total.min(num_pcpus));
        }
    }

    /// Over enough slices every vCPU gets CPU time (no starvation).
    #[test]
    fn no_vcpu_starves(
        policy in policy_strategy(),
        num_pcpus in 1usize..8,
        vcpu_counts in proptest::collection::vec(1usize..4, 1..5),
    ) {
        let total: usize = vcpu_counts.iter().sum();
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        let mut ran: HashSet<(usize, u32)> = HashSet::new();
        // Enough slices for the slowest rotation to cycle through.
        for _ in 0..(2 * total + 4) {
            for p in sched.next_slice() {
                ran.insert((p.vm_slot, p.vcpu.raw()));
            }
        }
        prop_assert_eq!(ran.len(), total, "some vCPU never ran");
    }
}
