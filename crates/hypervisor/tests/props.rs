//! Property-based tests for the vCPU scheduler: under any mix of VM sizes,
//! CPU counts and policies, a slice never double-books a physical CPU and
//! never schedules the same vCPU twice.

use proptest::prelude::*;
use std::collections::HashSet;

use hatric_hypervisor::{SchedPolicy, Scheduler};

fn policy_strategy() -> impl Strategy<Value = SchedPolicy> {
    prop_oneof![
        (0u8..1).prop_map(|_| SchedPolicy::Pinned),
        (0u8..1).prop_map(|_| SchedPolicy::RoundRobin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant: no two runnable vCPUs share a pCPU within a
    /// slice, and no vCPU runs on two pCPUs at once.
    #[test]
    fn slices_never_double_book(
        policy in policy_strategy(),
        num_pcpus in 1usize..16,
        vcpu_counts in proptest::collection::vec(1usize..5, 1..6),
        slices in 1usize..40,
    ) {
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        for _ in 0..slices {
            let placements = sched.next_slice();
            prop_assert!(placements.len() <= num_pcpus);
            let cpus: HashSet<_> = placements.iter().map(|p| p.pcpu).collect();
            prop_assert_eq!(cpus.len(), placements.len(), "pCPU double-booked");
            let vcpus: HashSet<_> =
                placements.iter().map(|p| (p.vm_slot, p.vcpu)).collect();
            prop_assert_eq!(vcpus.len(), placements.len(), "vCPU scheduled twice");
            for p in &placements {
                prop_assert!(p.pcpu.index() < num_pcpus);
                prop_assert!(p.vm_slot < vcpu_counts.len());
                prop_assert!(p.vcpu.index() < vcpu_counts[p.vm_slot]);
            }
        }
    }

    /// Work conservation: as long as runnable vCPUs exist, either every
    /// pCPU is busy or every vCPU is placed.
    #[test]
    fn slices_are_work_conserving(
        policy in policy_strategy(),
        num_pcpus in 1usize..12,
        vcpu_counts in proptest::collection::vec(1usize..4, 1..5),
    ) {
        let total: usize = vcpu_counts.iter().sum();
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        for _ in 0..8 {
            let placements = sched.next_slice();
            prop_assert_eq!(placements.len(), total.min(num_pcpus));
        }
    }

    /// A fully-paused VM (live migration's stop-and-copy) never runs: under
    /// any policy, CPU count and oversubscription level, and any pattern of
    /// pause/resume toggles, no slice ever places a vCPU of a paused VM —
    /// and non-paused VMs never starve while others are frozen.
    #[test]
    fn paused_vms_never_run_under_any_oversubscription(
        policy in policy_strategy(),
        num_pcpus in 1usize..8,
        vcpu_counts in proptest::collection::vec(1usize..5, 2..6),
        toggles in proptest::collection::vec((0usize..6, 0u8..2), 1..12),
        slices_between in 1usize..6,
    ) {
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        for (slot_seed, pause) in toggles {
            let slot = slot_seed % vcpu_counts.len();
            sched.set_vm_paused(slot, pause == 1);
            let paused: Vec<usize> = (0..vcpu_counts.len())
                .filter(|&s| sched.vm_paused(s))
                .collect();
            let runnable: usize = (0..vcpu_counts.len())
                .filter(|s| !sched.vm_paused(*s))
                .map(|s| vcpu_counts[s])
                .sum();
            let mut ran: HashSet<usize> = HashSet::new();
            // Enough slices for the slowest rotation to cycle through.
            for _ in 0..(slices_between * (vcpu_counts.iter().sum::<usize>() + 1)) {
                let placements = sched.next_slice();
                for p in &placements {
                    prop_assert!(
                        !paused.contains(&p.vm_slot),
                        "slice ran vCPU {:?} of fully-paused VM {}",
                        p.vcpu,
                        p.vm_slot
                    );
                    ran.insert(p.vm_slot);
                }
                prop_assert!(placements.len() <= num_pcpus);
                // Work conservation among runnable vCPUs (global queue
                // only: static pinning legitimately idles a CPU whose whole
                // pinned list is paused).
                if policy == SchedPolicy::RoundRobin {
                    prop_assert_eq!(placements.len(), runnable.min(num_pcpus));
                }
            }
            let expected: HashSet<usize> = (0..vcpu_counts.len())
                .filter(|s| !sched.vm_paused(*s))
                .collect();
            prop_assert_eq!(ran, expected, "a runnable VM starved while others were paused");
        }
    }

    /// Over enough slices every vCPU gets CPU time (no starvation).
    #[test]
    fn no_vcpu_starves(
        policy in policy_strategy(),
        num_pcpus in 1usize..8,
        vcpu_counts in proptest::collection::vec(1usize..4, 1..5),
    ) {
        let total: usize = vcpu_counts.iter().sum();
        let mut sched = Scheduler::new(policy, num_pcpus, &vcpu_counts);
        let mut ran: HashSet<(usize, u32)> = HashSet::new();
        // Enough slices for the slowest rotation to cycle through.
        for _ in 0..(2 * total + 4) {
            for p in sched.next_slice() {
                ran.insert((p.vm_slot, p.vcpu.raw()));
            }
        }
        prop_assert_eq!(ran.len(), total, "some vCPU never ran");
    }
}
