//! Property-based tests for the cache hierarchy and directory coherence.

use proptest::prelude::*;

use hatric_cache::{
    CacheHierarchy, CacheHierarchyConfig, DirectoryConfig, HitLevel, PrivateCacheConfig,
};
use hatric_types::{CacheLineAddr, CpuId};

fn hierarchy(cpus: usize) -> CacheHierarchy {
    CacheHierarchy::new(CacheHierarchyConfig {
        num_cpus: cpus,
        l1: PrivateCacheConfig {
            capacity_bytes: 2 * 1024,
            ways: 2,
        },
        l2: PrivateCacheConfig {
            capacity_bytes: 8 * 1024,
            ways: 4,
        },
        llc_bytes: 128 * 1024,
        llc_ways: 8,
        directory: DirectoryConfig::unbounded(),
        eager_pt_directory_update: false,
    })
}

#[derive(Debug, Clone)]
enum Op {
    Read(u8, u64),
    Write(u8, u64),
}

fn op_strategy(cpus: u8, lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..cpus, 0..lines).prop_map(|(c, l)| Op::Read(c, l)),
        (0..cpus, 0..lines).prop_map(|(c, l)| Op::Write(c, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-writer invariant: after any sequence of reads and writes, a
    /// write by one CPU invalidates every other CPU's private copy of that
    /// line, so no other CPU can hit on it in L1/L2 immediately afterwards.
    #[test]
    fn write_invalidates_all_other_private_copies(
        ops in proptest::collection::vec(op_strategy(4, 64), 1..200),
        line in 0u64..64,
        writer in 0u8..4,
    ) {
        let mut h = hierarchy(4);
        for op in &ops {
            match *op {
                Op::Read(c, l) => { h.read(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
                Op::Write(c, l) => { h.write(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
            }
        }
        let target = CacheLineAddr::new(line * 64);
        h.write(CpuId::new(writer.into()), target);
        for cpu in 0..4u32 {
            if cpu != u32::from(writer) {
                prop_assert!(
                    !h.cpu_holds_line(CpuId::new(cpu), target),
                    "cpu{cpu} still holds a line written by cpu{writer}"
                );
            }
        }
    }

    /// Reads after a write by the same CPU always hit locally (L1), i.e. the
    /// hierarchy never loses the writer's own copy.
    #[test]
    fn writer_keeps_its_own_copy(
        ops in proptest::collection::vec(op_strategy(4, 64), 0..100),
        line in 0u64..64,
    ) {
        let mut h = hierarchy(4);
        for op in &ops {
            match *op {
                Op::Read(c, l) => { h.read(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
                Op::Write(c, l) => { h.write(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
            }
        }
        let target = CacheLineAddr::new(line * 64);
        h.write(CpuId::new(0), target);
        let outcome = h.read(CpuId::new(0), target);
        prop_assert_eq!(outcome.level, HitLevel::L1);
    }

    /// Statistics are consistent: hits plus misses equals the number of
    /// lookups performed at each level.
    #[test]
    fn stats_account_for_every_access(
        ops in proptest::collection::vec(op_strategy(2, 128), 1..300),
    ) {
        let mut h = hierarchy(2);
        for op in &ops {
            match *op {
                Op::Read(c, l) => { h.read(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
                Op::Write(c, l) => { h.write(CpuId::new(c.into()), CacheLineAddr::new(l * 64)); }
            }
        }
        let stats = h.stats();
        prop_assert_eq!(stats.l1.total(), ops.len() as u64);
        prop_assert!(stats.memory_accesses.get() <= ops.len() as u64);
    }
}
