//! The full cache hierarchy: per-CPU private L1/L2 caches, a shared LLC and
//! the coherence directory, glued together behind a read/write interface.
//!
//! Two execution modes share the same state:
//!
//! * the classic **serial** [`CacheHierarchy::read`]/[`CacheHierarchy::write`]
//!   path, which mutates private and shared levels in one call, and
//! * the **phased** path of the parallel slice engine: workers own disjoint
//!   [`PrivatePair`]s and *simulate* against a frozen [`SharedCache`]
//!   ([`CacheHierarchy::split_simulate`]), logging every shared-level
//!   mutation as a [`SharedCacheOp`]; at the slice barrier the ops are
//!   replayed in canonical order via [`CacheHierarchy::apply_op`].

use serde::{Deserialize, Serialize};

use hatric_types::{CacheLineAddr, Counter, CpuId, RatioStat};

use crate::cache::{PrivateCache, PrivateCacheConfig};
use crate::directory::{CoherenceDirectory, DirectoryConfig, DirectoryEntry, SharerSet};
use crate::line::{MesiState, PtKind};

/// Which level of the hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// Private L1 cache.
    L1,
    /// Private L2 cache.
    L2,
    /// Shared last-level cache (or a remote private cache).
    Llc,
    /// DRAM.
    Memory,
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// Number of CPUs (private cache pairs).
    pub num_cpus: usize,
    /// L1 geometry.
    pub l1: PrivateCacheConfig,
    /// L2 geometry.
    pub l2: PrivateCacheConfig,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Shared LLC associativity.
    pub llc_ways: usize,
    /// Coherence directory sizing.
    pub directory: DirectoryConfig,
    /// Eagerly update directory sharer lists when page-table lines are
    /// evicted from private caches (the Fig. 12 "EGR-dir-update" ablation);
    /// the default (false) is HATRIC's lazy policy.
    pub eager_pt_directory_update: bool,
}

impl CacheHierarchyConfig {
    /// The paper's configuration: 32 KiB L1, 256 KiB L2 per CPU, 20 MiB LLC.
    #[must_use]
    pub fn haswell_like(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            l1: PrivateCacheConfig::l1_default(),
            l2: PrivateCacheConfig::l2_default(),
            llc_bytes: 20 * 1024 * 1024,
            llc_ways: 16,
            directory: DirectoryConfig::llc_sized(),
            eager_pt_directory_update: false,
        }
    }
}

/// Outcome of a read access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// A remote CPU had the line modified and was downgraded (adds latency).
    pub remote_downgrade: bool,
    /// Directory entries evicted for capacity by this access; every sharer
    /// was back-invalidated, and callers must back-invalidate translation
    /// structures for page-table lines.
    pub back_invalidated: Vec<(CacheLineAddr, SharerSet, Option<PtKind>)>,
}

/// Outcome of a write access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The underlying access outcome.
    pub access: AccessOutcome,
    /// Page-table kind of the written line, as recorded by the directory.
    pub pt_kind: Option<PtKind>,
    /// CPUs (other than the writer) that were listed as sharers and received
    /// invalidation messages.  For page-table lines these are the CPUs whose
    /// translation structures must receive co-tag invalidations.
    pub invalidated_sharers: SharerSet,
    /// Among the invalidated sharers, those that did not actually hold the
    /// line in their private caches (spurious cache invalidations).
    pub spurious_sharers: SharerSet,
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// L1 hit/miss across all CPUs.
    pub l1: RatioStat,
    /// L2 hit/miss across all CPUs.
    pub l2: RatioStat,
    /// LLC hit/miss.
    pub llc: RatioStat,
    /// Accesses that went to DRAM.
    pub memory_accesses: Counter,
    /// Coherence invalidation messages sent to private caches.
    pub invalidations_sent: Counter,
    /// Invalidations that found nothing to invalidate in the target's caches.
    pub spurious_invalidations: Counter,
    /// Lines back-invalidated due to directory evictions.
    pub back_invalidations: Counter,
    /// Dirty lines written back.
    pub writebacks: Counter,
    /// Writes that hit lines marked as page tables.
    pub pt_line_writes: Counter,
}

/// Private L1/L2 hit/miss counts accumulated by one simulate worker; the
/// commit phase folds them into [`CacheStatsSnapshot`] in canonical unit
/// order via [`CacheHierarchy::apply_stats_delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsDelta {
    /// L1 hits recorded during simulate.
    pub l1_hits: u64,
    /// L1 misses recorded during simulate.
    pub l1_misses: u64,
    /// L2 hits recorded during simulate.
    pub l2_hits: u64,
    /// L2 misses recorded during simulate.
    pub l2_misses: u64,
}

/// One CPU's private L1/L2 pair — the unit of cache state a simulate worker
/// owns exclusively for a slice.
#[derive(Debug, Clone)]
pub struct PrivatePair {
    l1: PrivateCache,
    l2: PrivateCache,
}

/// A shared-level mutation logged by a simulate worker, replayed at the
/// slice barrier in canonical `(vm slot, emission order)` sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedCacheOp {
    /// A read that missed the private levels and consulted LLC/directory.
    Read {
        /// The reading CPU.
        cpu: CpuId,
        /// The line read.
        line: CacheLineAddr,
        /// Whether the simulate phase saw no directory entry and therefore
        /// filled the reader Exclusive.  When the replay then finds an
        /// entry (another unit allocated first), the optimistic fill is
        /// reconciled to Shared.
        predicted_allocate: bool,
    },
    /// A write that needed the directory (miss or upgrade).
    Write {
        /// The writing CPU.
        cpu: CpuId,
        /// The line written.
        line: CacheLineAddr,
        /// Whether the simulate phase predicted a memory-level miss (the
        /// replay then fills the LLC and counts a DRAM access, mirroring
        /// the serial path).
        fill_memory: bool,
    },
    /// A line evicted from the worker's own private pair during simulate.
    Victim {
        /// The CPU whose private pair evicted the line.
        cpu: CpuId,
        /// The evicted line.
        line: CacheLineAddr,
        /// Whether the evicted copy was dirty (counts a writeback).
        dirty: bool,
    },
    /// The hardware walker marked a line as holding page-table entries.
    MarkPt {
        /// The page-table line.
        line: CacheLineAddr,
        /// Guest or nested page table.
        kind: PtKind,
    },
    /// Lazy sharer demotion after a spurious translation invalidation.
    DemoteSharer {
        /// The demoted CPU.
        cpu: CpuId,
        /// The line whose sharer list shrinks.
        line: CacheLineAddr,
    },
}

/// What the commit replay of one [`SharedCacheOp`] produced.
#[derive(Debug, Clone, Default)]
pub struct CommitOutcome {
    /// Directory entries evicted for capacity; sharers were back-invalidated
    /// in their private caches, and the caller must back-invalidate
    /// translation structures for page-table lines.
    pub back_invalidated: Vec<(CacheLineAddr, SharerSet, Option<PtKind>)>,
    /// Invalidated sharers that held no private copy (spurious).
    pub spurious_sharers: SharerSet,
}

/// What a *bank* replay of one op decided from bank state alone (directory
/// note + LLC probe); private-level consequences are reported separately as
/// [`PrivEffect`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct BankOutcome {
    /// A fresh directory entry was allocated (reads fill Exclusive).
    pub allocated: bool,
    /// The remote owner a read downgraded, if any.
    pub downgraded_owner: Option<CpuId>,
    /// Whether the LLC held the line at replay time.
    pub llc_hit: bool,
    /// Sharers a write invalidated (commit-time directory state).
    pub invalidate_targets: SharerSet,
    /// Page-table marking of the line, if any (writes).
    pub pt_kind: Option<PtKind>,
}

impl SharedCacheOp {
    /// The cache line this op targets (the bank-distribution key).
    #[must_use]
    pub fn line(&self) -> CacheLineAddr {
        match *self {
            SharedCacheOp::Read { line, .. }
            | SharedCacheOp::Write { line, .. }
            | SharedCacheOp::Victim { line, .. }
            | SharedCacheOp::MarkPt { line, .. }
            | SharedCacheOp::DemoteSharer { line, .. } => line,
        }
    }
}

/// Predicted outcome of a simulated read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimAccess {
    /// Predicted service level (from the frozen shared state).
    pub level: HitLevel,
    /// Predicted remote-owner downgrade.
    pub remote_downgrade: bool,
}

/// Predicted outcome of a simulated write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimWrite {
    /// Predicted service level.
    pub level: HitLevel,
    /// Page-table marking of the line per the frozen directory.
    pub pt_kind: Option<PtKind>,
    /// Sharers the frozen directory would invalidate (the hardware
    /// translation-coherence target set).
    pub invalidated_sharers: SharerSet,
}

impl PrivatePair {
    fn new(config: &CacheHierarchyConfig) -> Self {
        Self {
            l1: PrivateCache::new(config.l1),
            l2: PrivateCache::new(config.l2),
        }
    }

    /// Whether this pair currently holds `line` in L1 or L2.
    #[must_use]
    pub fn holds(&self, line: CacheLineAddr) -> bool {
        self.l1.probe(line).is_some() || self.l2.probe(line).is_some()
    }

    /// Fills `line` into the pair, logging evicted victims as
    /// [`SharedCacheOp::Victim`] for the commit replay (the serial path
    /// updates the directory inline instead).
    fn fill_logged(
        &mut self,
        cpu: CpuId,
        line: CacheLineAddr,
        state: MesiState,
        ops: &mut Vec<SharedCacheOp>,
    ) {
        if let Some((victim_line, victim_state)) = self.l1.fill(line, state) {
            if let Some((l2_victim, l2_state)) = self.l2.fill(victim_line, victim_state) {
                ops.push(SharedCacheOp::Victim {
                    cpu,
                    line: l2_victim,
                    dirty: l2_state.is_dirty(),
                });
            }
        }
        if let Some((l2_victim, l2_state)) = self.l2.fill(line, state) {
            // Maintain inclusion: a line falling out of L2 leaves L1 too.
            self.l1.invalidate(l2_victim);
            ops.push(SharedCacheOp::Victim {
                cpu,
                line: l2_victim,
                dirty: l2_state.is_dirty(),
            });
        }
    }

    /// Simulates a read by `cpu` against this pair plus the frozen shared
    /// state.  Shared-level consequences are appended to `ops`.
    pub fn simulate_read(
        &mut self,
        shared: &SharedCache,
        cpu: CpuId,
        line: CacheLineAddr,
        ops: &mut Vec<SharedCacheOp>,
        delta: &mut CacheStatsDelta,
    ) -> SimAccess {
        if self.l1.lookup(line).is_some() {
            delta.l1_hits += 1;
            return SimAccess {
                level: HitLevel::L1,
                remote_downgrade: false,
            };
        }
        delta.l1_misses += 1;
        if let Some(state) = self.l2.lookup(line) {
            delta.l2_hits += 1;
            self.fill_logged(cpu, line, state, ops);
            return SimAccess {
                level: HitLevel::L2,
                remote_downgrade: false,
            };
        }
        delta.l2_misses += 1;

        let bank = shared.bank(line);
        let entry = bank.directory.entry(line);
        let would_allocate = entry.is_none();
        let remote_downgrade = entry
            .and_then(|e| e.owner)
            .is_some_and(|owner| owner != cpu);
        let llc_hit = bank.llc_probe(line);
        let level = if llc_hit || remote_downgrade {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        };
        let fill_state = if would_allocate {
            MesiState::Exclusive
        } else {
            MesiState::Shared
        };
        self.fill_logged(cpu, line, fill_state, ops);
        ops.push(SharedCacheOp::Read {
            cpu,
            line,
            predicted_allocate: would_allocate,
        });
        SimAccess {
            level,
            remote_downgrade,
        }
    }

    /// Simulates a write by `cpu` against this pair plus the frozen shared
    /// state.  Shared-level consequences are appended to `ops`.
    pub fn simulate_write(
        &mut self,
        shared: &SharedCache,
        cpu: CpuId,
        line: CacheLineAddr,
        ops: &mut Vec<SharedCacheOp>,
        delta: &mut CacheStatsDelta,
    ) -> SimWrite {
        // Silent upgrade when we already own the line.
        let l1_state = self.l1.lookup(line);
        if let Some(state) = l1_state {
            delta.l1_hits += 1;
            if state.can_write_silently() {
                self.l1.set_state(line, MesiState::Modified);
                self.l2.set_state(line, MesiState::Modified);
                return SimWrite {
                    level: HitLevel::L1,
                    pt_kind: None,
                    invalidated_sharers: SharerSet::empty(),
                };
            }
        } else {
            delta.l1_misses += 1;
        }

        let bank = shared.bank(line);
        let entry = bank.directory.entry(line);
        let targets = entry
            .map(|e| e.sharers.without(cpu))
            .unwrap_or_else(SharerSet::empty);
        let pt_kind = entry.and_then(DirectoryEntry::pt_kind);
        let llc_hit = bank.llc_probe(line);
        let had_locally = l1_state.is_some() || self.l2.probe(line).is_some();
        let level = if had_locally {
            HitLevel::L2
        } else if llc_hit || !targets.is_empty() {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        };
        self.fill_logged(cpu, line, MesiState::Modified, ops);
        ops.push(SharedCacheOp::Write {
            cpu,
            line,
            fill_memory: level == HitLevel::Memory,
        });
        SimWrite {
            level,
            pt_kind,
            invalidated_sharers: targets,
        }
    }
}

/// One bank of the shared level: a slice of the LLC's sets plus the
/// directory entries of the lines mapping to them.
///
/// Banking serves the parallel commit: ops on different banks touch
/// disjoint state, so bank queues can be replayed concurrently.  The bank
/// count is a pure function of the LLC geometry — never of the thread
/// count — so results are identical however many workers drain the banks.
#[derive(Debug, Clone)]
pub struct CacheBank {
    llc: PrivateCache,
    directory: CoherenceDirectory,
    /// Total bank count (the stride of this bank's line population).  Lines
    /// routed to bank *b* all have `index ≡ b (mod bank_count)`, so the
    /// bank's internal set index uses the *folded* index `index / count` —
    /// without the fold, only `1/count` of the bank's sets would ever be
    /// reachable (the index's low bits are constant within a bank).
    fold: u64,
    /// Bank-side statistics (LLC hits, DRAM accesses, invalidations sent,
    /// pt-line writes, back-invalidations, victim writebacks).  Summed over
    /// banks — integer counters, so the summation order is irrelevant.
    stats: CacheStatsSnapshot,
}

impl CacheBank {
    /// The bank-internal key of `line`: the folded index (`index / fold`),
    /// a bijection within the bank's line population.
    fn llc_key(&self, line: CacheLineAddr) -> CacheLineAddr {
        CacheLineAddr::new((line.index() / self.fold) * 64)
    }

    /// Whether this bank's LLC slice holds `line` (no recency effects).
    #[must_use]
    pub fn llc_probe(&self, line: CacheLineAddr) -> bool {
        self.llc.probe(self.llc_key(line)).is_some()
    }
}

/// Deferred private-level consequence of a banked op replay, resolved in
/// the serial seq-ordered pass (bank replays never touch private pairs).
#[derive(Debug, Clone, Copy)]
pub enum PrivEffect {
    /// `note_read` found a remote modified/exclusive owner: downgrade its
    /// private copies to Shared (counting a writeback if it was Modified).
    Downgrade {
        /// The owning CPU.
        owner: CpuId,
        /// The downgraded line.
        line: CacheLineAddr,
    },
    /// `note_write` listed this CPU as a sharer: invalidate its private
    /// copies (counting a spurious invalidation if it held none).
    Invalidate {
        /// The target CPU.
        target: CpuId,
        /// The invalidated line.
        line: CacheLineAddr,
    },
    /// A read replayed against an already-allocated directory entry after
    /// its simulate phase predicted a fresh allocation: the reader's
    /// privately-filled Exclusive (or silently-upgraded Modified) copy is
    /// demoted to Shared so directory state and private MESI state agree
    /// past the barrier.
    Reconcile {
        /// The CPU whose optimistic Exclusive fill is demoted.
        cpu: CpuId,
        /// The line read.
        line: CacheLineAddr,
    },
    /// A directory entry was evicted for capacity: back-invalidate the
    /// line in every sharer's private caches — and, for page-table lines,
    /// their translation structures (handled by the engine).
    BackInvalidate {
        /// The evicted line.
        line: CacheLineAddr,
        /// Its sharers at eviction time.
        sharers: SharerSet,
        /// Its page-table marking, if any.
        pt: Option<PtKind>,
    },
}

impl CacheBank {
    /// Replays one op against this bank.  Reads and writes consult/update
    /// the bank's directory slice and LLC sets and record bank-side
    /// statistics; every private-level consequence (downgrades, sharer
    /// invalidations, back-invalidations) is appended to `priv_out` tagged
    /// with the op's global `seq`, to be resolved by the serial seq-ordered
    /// pass.  Bank replays read no private state, so banks can be drained
    /// concurrently.
    pub fn apply_op(
        &mut self,
        op: &SharedCacheOp,
        seq: u64,
        eager_pt_directory_update: bool,
        priv_out: &mut Vec<(u64, PrivEffect)>,
    ) -> BankOutcome {
        let mut out = BankOutcome::default();
        match *op {
            SharedCacheOp::Read {
                cpu,
                line,
                predicted_allocate,
            } => {
                let (note, victim) = self.directory.note_read(line, cpu);
                self.push_victim(victim, seq, priv_out);
                if let Some(owner) = note.downgraded_owner {
                    priv_out.push((seq, PrivEffect::Downgrade { owner, line }));
                }
                if predicted_allocate && !note.allocated {
                    // The simulate phase filled the reader Exclusive because
                    // the frozen directory had no entry; the replay found
                    // one (another unit got there first), so the optimistic
                    // copy must be demoted to Shared or a later silent
                    // write would never invalidate the other sharers.
                    priv_out.push((seq, PrivEffect::Reconcile { cpu, line }));
                }
                let key = self.llc_key(line);
                let llc_hit = self.llc.lookup(key).is_some();
                self.stats
                    .llc
                    .record(llc_hit || note.downgraded_owner.is_some());
                if !llc_hit && note.downgraded_owner.is_none() {
                    self.stats.memory_accesses.incr();
                    self.llc.fill(key, MesiState::Shared);
                }
                out.allocated = note.allocated;
                out.downgraded_owner = note.downgraded_owner;
                out.llc_hit = llc_hit;
            }
            SharedCacheOp::Write {
                cpu,
                line,
                fill_memory,
            } => {
                let (note, victim) = self.directory.note_write(line, cpu);
                self.push_victim(victim, seq, priv_out);
                for target in note.invalidate_targets.iter() {
                    self.stats.invalidations_sent.incr();
                    priv_out.push((seq, PrivEffect::Invalidate { target, line }));
                }
                if note.pt_kind.is_some() {
                    self.stats.pt_line_writes.incr();
                }
                let key = self.llc_key(line);
                let llc_hit = self.llc.lookup(key).is_some();
                self.stats.llc.record(llc_hit);
                if fill_memory {
                    self.stats.memory_accesses.incr();
                    self.llc.fill(key, MesiState::Modified);
                }
                out.allocated = note.allocated;
                out.llc_hit = llc_hit;
                out.invalidate_targets = note.invalidate_targets;
                out.pt_kind = note.pt_kind;
            }
            SharedCacheOp::Victim { cpu, line, dirty } => {
                if dirty {
                    self.stats.writebacks.incr();
                }
                let is_pt = self
                    .directory
                    .entry(line)
                    .map(|e| e.pt_kind().is_some())
                    .unwrap_or(false);
                // Lazy sharer updates for page-table lines (HATRIC, Fig. 6);
                // eager for everything else or when the ablation flag is set.
                if !is_pt || eager_pt_directory_update {
                    self.directory.remove_sharer(line, cpu);
                }
            }
            SharedCacheOp::MarkPt { line, kind } => {
                self.directory.mark_pt(line, kind);
            }
            SharedCacheOp::DemoteSharer { cpu, line } => {
                self.directory.demote_after_spurious(line, cpu);
            }
        }
        out
    }

    fn push_victim(
        &mut self,
        victim: Option<(CacheLineAddr, DirectoryEntry)>,
        seq: u64,
        priv_out: &mut Vec<(u64, PrivEffect)>,
    ) {
        if let Some((line, entry)) = victim {
            self.stats
                .back_invalidations
                .add(u64::from(entry.sharers.count()));
            priv_out.push((
                seq,
                PrivEffect::BackInvalidate {
                    line,
                    sharers: entry.sharers,
                    pt: entry.pt_kind(),
                },
            ));
        }
    }
}

/// Everything the CPUs share: the banked LLC + coherence directory and the
/// private-side aggregate statistics.  Frozen (immutably borrowed) during
/// the simulate phase; banks are mutated either serially (classic path) or
/// by the parallel bank replay.
#[derive(Debug, Clone)]
pub struct SharedCache {
    banks: Vec<CacheBank>,
    /// Total LLC sets across banks (the line → bank mapping's modulus).
    llc_sets: usize,
    eager_pt_directory_update: bool,
    /// Statistics fed by the private side (L1/L2 ratios, spurious
    /// invalidations, downgrade writebacks) — everything a bank replay
    /// cannot decide on its own.
    stats: CacheStatsSnapshot,
}

impl SharedCache {
    /// The largest power-of-two bank count ≤ 16 that divides the set count
    /// (falling back towards 1 for tiny test geometries).
    fn bank_count_for(sets: usize) -> usize {
        let mut banks = 16usize;
        while banks > 1 && (!sets.is_multiple_of(banks) || sets / banks == 0) {
            banks /= 2;
        }
        banks
    }

    /// Which bank `line` belongs to.
    #[must_use]
    pub fn bank_of(&self, line: CacheLineAddr) -> usize {
        (line.index() as usize % self.llc_sets) % self.banks.len()
    }

    /// Number of banks (fixed by geometry).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    fn bank(&self, line: CacheLineAddr) -> &CacheBank {
        &self.banks[self.bank_of(line)]
    }

    /// Hands the banks out for a parallel replay (the caller distributes
    /// ops by [`SharedCache::bank_of`] and drains each bank's queue on
    /// exactly one worker).
    pub fn banks_mut(&mut self) -> &mut [CacheBank] {
        &mut self.banks
    }
}

/// The cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    private: Vec<PrivatePair>,
    shared: SharedCache,
    config: CacheHierarchyConfig,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero or greater than 64.
    #[must_use]
    pub fn new(config: CacheHierarchyConfig) -> Self {
        assert!(config.num_cpus > 0, "need at least one CPU");
        assert!(
            config.num_cpus <= 64,
            "directory sharer sets support at most 64 CPUs"
        );
        let private = (0..config.num_cpus)
            .map(|_| PrivatePair::new(&config))
            .collect();
        let llc_sets = ((config.llc_bytes / 64) as usize / config.llc_ways).max(1);
        let bank_count = SharedCache::bank_count_for(llc_sets);
        let banks = (0..bank_count)
            .map(|_| CacheBank {
                llc: PrivateCache::new(PrivateCacheConfig {
                    capacity_bytes: config.llc_bytes / bank_count as u64,
                    ways: config.llc_ways,
                }),
                fold: bank_count as u64,
                directory: CoherenceDirectory::new(DirectoryConfig {
                    // A bounded directory splits its capacity across banks
                    // (at least one entry per bank — `0` means unbounded
                    // and must stay 0).
                    max_entries: if config.directory.max_entries == 0 {
                        0
                    } else {
                        (config.directory.max_entries / bank_count).max(1)
                    },
                }),
                stats: CacheStatsSnapshot::default(),
            })
            .collect();
        Self {
            private,
            shared: SharedCache {
                banks,
                llc_sets,
                eager_pt_directory_update: config.eager_pt_directory_update,
                stats: CacheStatsSnapshot::default(),
            },
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &CacheHierarchyConfig {
        &self.config
    }

    /// Whether the directory lists `cpu` as a sharer of `line`.
    #[must_use]
    pub fn is_sharer(&self, line: CacheLineAddr, cpu: CpuId) -> bool {
        self.shared.bank(line).directory.is_sharer(line, cpu)
    }

    /// Aggregate directory statistics, summed over banks.
    #[must_use]
    pub fn directory_stats(&self) -> crate::directory::DirectoryStats {
        let mut total = crate::directory::DirectoryStats::default();
        for bank in &self.shared.banks {
            let s = bank.directory.stats();
            total.allocations.add(s.allocations.get());
            total.evictions.add(s.evictions.get());
            total.pt_writes.add(s.pt_writes.get());
            total.lazy_demotions.add(s.lazy_demotions.get());
        }
        total
    }

    /// Number of lines currently tracked by the coherence directory,
    /// summed over banks — the occupancy gauge the counter timelines
    /// sample.  Read-only: sampling it never perturbs the model.
    #[must_use]
    pub fn directory_len(&self) -> usize {
        self.shared
            .banks
            .iter()
            .map(|bank| bank.directory.len())
            .sum()
    }

    /// Splits the hierarchy for a simulate phase: the shared level is
    /// frozen, the private pairs are handed out for exclusive per-worker
    /// mutation (the caller partitions them by slice ownership).
    pub fn split_simulate(&mut self) -> (&SharedCache, &mut [PrivatePair]) {
        (&self.shared, &mut self.private)
    }

    /// Which bank a line's ops belong to (the parallel commit's
    /// distribution key).
    #[must_use]
    pub fn bank_of(&self, line: CacheLineAddr) -> usize {
        self.shared.bank_of(line)
    }

    /// Number of LLC/directory banks (fixed by geometry, independent of
    /// the worker count).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.shared.bank_count()
    }

    /// Hands the banks out for a parallel commit replay.
    pub fn banks_mut(&mut self) -> &mut [CacheBank] {
        self.shared.banks_mut()
    }

    /// Whether `cpu` currently holds `line` in its private caches.
    #[must_use]
    pub fn cpu_holds_line(&self, cpu: CpuId, line: CacheLineAddr) -> bool {
        self.private[cpu.index()].holds(line)
    }

    fn handle_private_victim(&mut self, cpu: CpuId, line: CacheLineAddr, state: MesiState) {
        let op = SharedCacheOp::Victim {
            cpu,
            line,
            dirty: state.is_dirty(),
        };
        let eager = self.shared.eager_pt_directory_update;
        let bank = self.shared.bank_of(line);
        let mut unused = Vec::new();
        self.shared.banks[bank].apply_op(&op, 0, eager, &mut unused);
        debug_assert!(unused.is_empty(), "victims have no private consequences");
    }

    fn fill_private(&mut self, cpu: CpuId, line: CacheLineAddr, state: MesiState) {
        let pair = &mut self.private[cpu.index()];
        if let Some((victim_line, victim_state)) = pair.l1.fill(line, state) {
            if let Some((l2_victim, l2_state)) = pair.l2.fill(victim_line, victim_state) {
                self.handle_private_victim(cpu, l2_victim, l2_state);
            }
        }
        let pair = &mut self.private[cpu.index()];
        if let Some((l2_victim, l2_state)) = pair.l2.fill(line, state) {
            // Maintain inclusion: a line falling out of L2 leaves L1 too.
            pair.l1.invalidate(l2_victim);
            self.handle_private_victim(cpu, l2_victim, l2_state);
        }
    }

    /// Performs a read by `cpu` of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn read(&mut self, cpu: CpuId, line: CacheLineAddr) -> AccessOutcome {
        assert!(cpu.index() < self.config.num_cpus, "unknown {cpu}");
        if self.private[cpu.index()].l1.lookup(line).is_some() {
            self.shared.stats.l1.hit();
            return AccessOutcome {
                level: HitLevel::L1,
                remote_downgrade: false,
                back_invalidated: Vec::new(),
            };
        }
        self.shared.stats.l1.miss();
        if let Some(state) = self.private[cpu.index()].l2.lookup(line) {
            self.shared.stats.l2.hit();
            self.fill_private(cpu, line, state);
            return AccessOutcome {
                level: HitLevel::L2,
                remote_downgrade: false,
                back_invalidated: Vec::new(),
            };
        }
        self.shared.stats.l2.miss();

        let (bank_outcome, commit) = self.apply_serial(&SharedCacheOp::Read {
            cpu,
            line,
            // The serial path fills the private pair *after* the op, from
            // the replay's own outcome — nothing optimistic to reconcile.
            predicted_allocate: false,
        });
        let level = if bank_outcome.llc_hit || bank_outcome.downgraded_owner.is_some() {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        };
        let fill_state = if bank_outcome.allocated {
            MesiState::Exclusive
        } else {
            MesiState::Shared
        };
        self.fill_private(cpu, line, fill_state);
        AccessOutcome {
            level,
            remote_downgrade: bank_outcome.downgraded_owner.is_some(),
            back_invalidated: commit.back_invalidated,
        }
    }

    /// Performs a write by `cpu` of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn write(&mut self, cpu: CpuId, line: CacheLineAddr) -> WriteOutcome {
        assert!(cpu.index() < self.config.num_cpus, "unknown {cpu}");
        // Silent upgrade when we already own the line.
        let l1_state = self.private[cpu.index()].l1.lookup(line);
        if let Some(state) = l1_state {
            self.shared.stats.l1.hit();
            if state.can_write_silently() {
                let pair = &mut self.private[cpu.index()];
                pair.l1.set_state(line, MesiState::Modified);
                pair.l2.set_state(line, MesiState::Modified);
                return WriteOutcome {
                    access: AccessOutcome {
                        level: HitLevel::L1,
                        remote_downgrade: false,
                        back_invalidated: Vec::new(),
                    },
                    pt_kind: None,
                    invalidated_sharers: SharerSet::empty(),
                    spurious_sharers: SharerSet::empty(),
                };
            }
        } else {
            self.shared.stats.l1.miss();
        }

        // Upgrade or miss: consult the directory bank.  The service level
        // is decided against the pre-op state (mirroring the simulate-side
        // prediction), then the op is applied.
        let had_locally = l1_state.is_some() || self.private[cpu.index()].l2.probe(line).is_some();
        let bank = self.shared.bank(line);
        let peek_targets = bank
            .directory
            .entry(line)
            .map(|e| e.sharers.without(cpu))
            .unwrap_or_else(SharerSet::empty);
        let peek_llc_hit = bank.llc_probe(line);
        let level = if had_locally {
            HitLevel::L2
        } else if peek_llc_hit || !peek_targets.is_empty() {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        };
        let (bank_outcome, commit) = self.apply_serial(&SharedCacheOp::Write {
            cpu,
            line,
            fill_memory: level == HitLevel::Memory,
        });
        self.fill_private(cpu, line, MesiState::Modified);
        WriteOutcome {
            access: AccessOutcome {
                level,
                remote_downgrade: false,
                back_invalidated: commit.back_invalidated,
            },
            pt_kind: bank_outcome.pt_kind,
            invalidated_sharers: bank_outcome.invalidate_targets,
            spurious_sharers: commit.spurious_sharers,
        }
    }

    /// Replays one logged shared-level op *serially*: the bank replay plus
    /// the immediate resolution of its private-level consequences.  The
    /// initiator's private fill already happened (during simulate, or by
    /// the serial `read`/`write` caller); the replay performs the
    /// directory/LLC work, invalidations and downgrades of *other* CPUs'
    /// pairs, and the shared statistics.
    ///
    /// # Panics
    ///
    /// Panics if an op names a CPU out of range.
    pub fn apply_op(&mut self, op: &SharedCacheOp) -> CommitOutcome {
        let (_, commit) = self.apply_serial(op);
        commit
    }

    fn apply_serial(&mut self, op: &SharedCacheOp) -> (BankOutcome, CommitOutcome) {
        let eager = self.shared.eager_pt_directory_update;
        let bank = self.shared.bank_of(op.line());
        let mut privs: Vec<(u64, PrivEffect)> = Vec::new();
        let bank_outcome = self.shared.banks[bank].apply_op(op, 0, eager, &mut privs);
        let mut commit = CommitOutcome::default();
        for (_, effect) in &privs {
            if let PrivEffect::BackInvalidate { line, sharers, pt } = effect {
                commit.back_invalidated.push((*line, *sharers, *pt));
            }
            if let Some(spurious) = self.resolve_priv(effect) {
                commit.spurious_sharers.add(spurious);
            }
        }
        (bank_outcome, commit)
    }

    /// Resolves one deferred private-level effect (the seq-ordered serial
    /// pass of the parallel commit).  Returns the target CPU when an
    /// invalidation turned out spurious.
    pub fn resolve_priv(&mut self, effect: &PrivEffect) -> Option<CpuId> {
        match *effect {
            PrivEffect::Downgrade { owner, line } => {
                let pair = &mut self.private[owner.index()];
                if pair.l1.probe(line) == Some(MesiState::Modified)
                    || pair.l2.probe(line) == Some(MesiState::Modified)
                {
                    self.shared.stats.writebacks.incr();
                }
                pair.l1.set_state(line, MesiState::Shared);
                pair.l2.set_state(line, MesiState::Shared);
                None
            }
            PrivEffect::Invalidate { target, line } => {
                let pair = &mut self.private[target.index()];
                let had_l1 = pair.l1.invalidate(line).is_some();
                let had_l2 = pair.l2.invalidate(line).is_some();
                if !had_l1 && !had_l2 {
                    self.shared.stats.spurious_invalidations.incr();
                    Some(target)
                } else {
                    None
                }
            }
            PrivEffect::Reconcile { cpu, line } => {
                let pair = &mut self.private[cpu.index()];
                match pair.l2.probe(line).or(pair.l1.probe(line)) {
                    Some(MesiState::Modified) => {
                        // A silent within-slice upgrade rode the optimistic
                        // Exclusive; the dirty data is written back as the
                        // copy demotes.
                        self.shared.stats.writebacks.incr();
                    }
                    Some(MesiState::Exclusive) => {}
                    _ => return None,
                }
                pair.l1.set_state(line, MesiState::Shared);
                pair.l2.set_state(line, MesiState::Shared);
                None
            }
            PrivEffect::BackInvalidate { line, sharers, .. } => {
                for cpu in sharers.iter() {
                    self.private[cpu.index()].l1.invalidate(line);
                    self.private[cpu.index()].l2.invalidate(line);
                }
                None
            }
        }
    }

    /// Folds one worker's private-level hit/miss counts into the shared
    /// statistics (commit phase, canonical unit order).
    pub fn apply_stats_delta(&mut self, delta: &CacheStatsDelta) {
        self.shared.stats.l1.add_hits(delta.l1_hits);
        self.shared.stats.l1.add_misses(delta.l1_misses);
        self.shared.stats.l2.add_hits(delta.l2_hits);
        self.shared.stats.l2.add_misses(delta.l2_misses);
    }

    /// Marks a line as holding page-table entries of the given kind (done by
    /// the hardware walker when it fills translation structures from a line
    /// whose accessed bit was clear).
    pub fn mark_pt_line(&mut self, line: CacheLineAddr, kind: PtKind) {
        let bank = self.shared.bank_of(line);
        self.shared.banks[bank].directory.mark_pt(line, kind);
    }

    /// Lazily demotes `cpu` from `line`'s sharer list after the translation
    /// coherence layer found nothing to invalidate there.
    pub fn demote_sharer(&mut self, line: CacheLineAddr, cpu: CpuId) {
        let bank = self.shared.bank_of(line);
        self.shared.banks[bank]
            .directory
            .demote_after_spurious(line, cpu);
    }

    /// Aggregate statistics: the private-side counters plus every bank's,
    /// summed in bank order (directory statistics are available separately
    /// via [`CacheHierarchy::directory_stats`]).
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        let mut total = self.shared.stats;
        for bank in &self.shared.banks {
            total.l1.merge(bank.stats.l1);
            total.l2.merge(bank.stats.l2);
            total.llc.merge(bank.stats.llc);
            total.memory_accesses.add(bank.stats.memory_accesses.get());
            total
                .invalidations_sent
                .add(bank.stats.invalidations_sent.get());
            total
                .spurious_invalidations
                .add(bank.stats.spurious_invalidations.get());
            total
                .back_invalidations
                .add(bank.stats.back_invalidations.get());
            total.writebacks.add(bank.stats.writebacks.get());
            total.pt_line_writes.add(bank.stats.pt_line_writes.get());
        }
        total
    }

    /// Resets the aggregate statistics.
    pub fn reset_stats(&mut self) {
        self.shared.stats = CacheStatsSnapshot::default();
        for bank in &mut self.shared.banks {
            bank.stats = CacheStatsSnapshot::default();
            bank.llc.reset_stats();
        }
        for pair in &mut self.private {
            pair.l1.reset_stats();
            pair.l2.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLineAddr {
        CacheLineAddr::new(n * 64)
    }

    fn small_hierarchy(cpus: usize) -> CacheHierarchy {
        CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: cpus,
            l1: PrivateCacheConfig {
                capacity_bytes: 1024,
                ways: 2,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig::unbounded(),
            eager_pt_directory_update: false,
        })
    }

    #[test]
    fn first_read_misses_to_memory_then_hits_l1() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        let first = h.read(cpu, line(5));
        assert_eq!(first.level, HitLevel::Memory);
        let second = h.read(cpu, line(5));
        assert_eq!(second.level, HitLevel::L1);
    }

    #[test]
    fn cross_cpu_read_hits_llc() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(0), line(5));
        let other = h.read(CpuId::new(1), line(5));
        assert_eq!(other.level, HitLevel::Llc);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut h = small_hierarchy(4);
        for cpu in 0..3 {
            h.read(CpuId::new(cpu), line(9));
        }
        let outcome = h.write(CpuId::new(3), line(9));
        assert_eq!(outcome.invalidated_sharers.count(), 3);
        // The remote copies are gone: re-reads go past L1/L2.
        let reread = h.read(CpuId::new(0), line(9));
        assert_ne!(reread.level, HitLevel::L1);
        assert_ne!(reread.level, HitLevel::L2);
    }

    #[test]
    fn silent_write_on_owned_line() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        h.write(cpu, line(3));
        let again = h.write(cpu, line(3));
        assert_eq!(again.access.level, HitLevel::L1);
        assert_eq!(again.invalidated_sharers.count(), 0);
    }

    #[test]
    fn pt_marked_line_reports_kind_on_write() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(0), line(7));
        h.mark_pt_line(line(7), PtKind::Nested);
        let outcome = h.write(CpuId::new(1), line(7));
        assert_eq!(outcome.pt_kind, Some(PtKind::Nested));
        assert!(outcome.invalidated_sharers.contains(CpuId::new(0)));
        assert_eq!(h.stats().pt_line_writes.get(), 1);
    }

    #[test]
    fn lazy_sharer_update_keeps_pt_sharers_after_eviction() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        h.read(cpu, line(1));
        h.mark_pt_line(line(1), PtKind::Nested);
        // Thrash CPU 0's tiny private caches so line 1 is evicted.
        for i in 100..400 {
            h.read(cpu, line(i));
        }
        assert!(!h.cpu_holds_line(cpu, line(1)));
        // The directory still lists CPU 0 as a sharer (lazy update), so a
        // remote write sends it a (spurious) invalidation.
        let outcome = h.write(CpuId::new(1), line(1));
        assert!(outcome.invalidated_sharers.contains(cpu));
        assert!(outcome.spurious_sharers.contains(cpu));
    }

    #[test]
    fn eager_update_removes_pt_sharers_after_eviction() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: 2,
            l1: PrivateCacheConfig {
                capacity_bytes: 1024,
                ways: 2,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig::unbounded(),
            eager_pt_directory_update: true,
        });
        let cpu = CpuId::new(0);
        h.read(cpu, line(1));
        h.mark_pt_line(line(1), PtKind::Nested);
        for i in 100..400 {
            h.read(cpu, line(i));
        }
        let outcome = h.write(CpuId::new(1), line(1));
        assert!(!outcome.invalidated_sharers.contains(cpu));
    }

    #[test]
    fn directory_eviction_back_invalidates() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: 1,
            l1: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 16 * 1024,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig { max_entries: 8 },
            eager_pt_directory_update: false,
        });
        let cpu = CpuId::new(0);
        let mut saw_back_invalidation = false;
        for i in 0..64 {
            let out = h.read(cpu, line(i));
            if !out.back_invalidated.is_empty() {
                saw_back_invalidation = true;
            }
        }
        assert!(saw_back_invalidation);
        assert!(h.stats().back_invalidations.get() > 0);
    }

    #[test]
    fn remote_dirty_read_downgrades() {
        let mut h = small_hierarchy(2);
        h.write(CpuId::new(0), line(11));
        let out = h.read(CpuId::new(1), line(11));
        assert!(out.remote_downgrade);
        assert_eq!(out.level, HitLevel::Llc);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn out_of_range_cpu_panics() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(9), line(0));
    }

    // ----- phased simulate/commit path --------------------------------------

    #[test]
    fn simulate_predicts_from_frozen_state_and_commit_replays() {
        let mut h = small_hierarchy(2);
        // Warm the shared state serially: CPU 1 owns line 5.
        h.read(CpuId::new(1), line(5));
        let mut ops = Vec::new();
        let mut delta = CacheStatsDelta::default();
        {
            let (shared, pairs) = h.split_simulate();
            let sim = pairs[0].simulate_read(shared, CpuId::new(0), line(5), &mut ops, &mut delta);
            // Frozen directory lists CPU 1 as owner: predicted LLC-level.
            assert_eq!(sim.level, HitLevel::Llc);
            assert!(sim.remote_downgrade);
            // A repeat hits the just-filled private L1 with no new op.
            let again =
                pairs[0].simulate_read(shared, CpuId::new(0), line(5), &mut ops, &mut delta);
            assert_eq!(again.level, HitLevel::L1);
        }
        assert_eq!(
            ops.iter()
                .filter(|op| matches!(op, SharedCacheOp::Read { .. }))
                .count(),
            1
        );
        for op in &ops {
            h.apply_op(op);
        }
        h.apply_stats_delta(&delta);
        assert_eq!(delta.l1_hits, 1);
        assert_eq!(delta.l1_misses, 1);
        // After commit, the directory lists both CPUs as sharers.
        assert!(h.is_sharer(line(5), CpuId::new(0)));
        assert!(h.is_sharer(line(5), CpuId::new(1)));
    }

    #[test]
    fn simulated_memory_miss_fills_the_llc_at_commit() {
        let mut h = small_hierarchy(2);
        let mut ops = Vec::new();
        let mut delta = CacheStatsDelta::default();
        {
            let (shared, pairs) = h.split_simulate();
            let sim = pairs[0].simulate_read(shared, CpuId::new(0), line(9), &mut ops, &mut delta);
            assert_eq!(sim.level, HitLevel::Memory);
            let w = pairs[1].simulate_write(shared, CpuId::new(1), line(10), &mut ops, &mut delta);
            assert_eq!(w.level, HitLevel::Memory);
        }
        for op in &ops {
            h.apply_op(op);
        }
        assert_eq!(h.stats().memory_accesses.get(), 2);
        // The replayed fills are visible to later serial reads.
        assert_ne!(h.read(CpuId::new(1), line(9)).level, HitLevel::Memory);
    }

    #[test]
    fn simulated_write_predicts_frozen_sharers() {
        let mut h = small_hierarchy(4);
        for cpu in 0..3 {
            h.read(CpuId::new(cpu), line(4));
        }
        let mut ops = Vec::new();
        let mut delta = CacheStatsDelta::default();
        {
            let (shared, pairs) = h.split_simulate();
            let w = pairs[3].simulate_write(shared, CpuId::new(3), line(4), &mut ops, &mut delta);
            assert_eq!(w.invalidated_sharers.count(), 3);
        }
        for op in &ops {
            h.apply_op(op);
        }
        // Commit delivered the invalidations: the remote copies are gone.
        assert!(!h.cpu_holds_line(CpuId::new(0), line(4)));
        assert_eq!(h.stats().invalidations_sent.get(), 3);
    }
}
