//! The full cache hierarchy: per-CPU private L1/L2 caches, a shared LLC and
//! the coherence directory, glued together behind a read/write interface.

use serde::{Deserialize, Serialize};

use hatric_types::{CacheLineAddr, Counter, CpuId, RatioStat};

use crate::cache::{PrivateCache, PrivateCacheConfig};
use crate::directory::{CoherenceDirectory, DirectoryConfig, DirectoryEntry, SharerSet};
use crate::line::{MesiState, PtKind};

/// Which level of the hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HitLevel {
    /// Private L1 cache.
    L1,
    /// Private L2 cache.
    L2,
    /// Shared last-level cache (or a remote private cache).
    Llc,
    /// DRAM.
    Memory,
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// Number of CPUs (private cache pairs).
    pub num_cpus: usize,
    /// L1 geometry.
    pub l1: PrivateCacheConfig,
    /// L2 geometry.
    pub l2: PrivateCacheConfig,
    /// Shared LLC capacity in bytes.
    pub llc_bytes: u64,
    /// Shared LLC associativity.
    pub llc_ways: usize,
    /// Coherence directory sizing.
    pub directory: DirectoryConfig,
    /// Eagerly update directory sharer lists when page-table lines are
    /// evicted from private caches (the Fig. 12 "EGR-dir-update" ablation);
    /// the default (false) is HATRIC's lazy policy.
    pub eager_pt_directory_update: bool,
}

impl CacheHierarchyConfig {
    /// The paper's configuration: 32 KiB L1, 256 KiB L2 per CPU, 20 MiB LLC.
    #[must_use]
    pub fn haswell_like(num_cpus: usize) -> Self {
        Self {
            num_cpus,
            l1: PrivateCacheConfig::l1_default(),
            l2: PrivateCacheConfig::l2_default(),
            llc_bytes: 20 * 1024 * 1024,
            llc_ways: 16,
            directory: DirectoryConfig::llc_sized(),
            eager_pt_directory_update: false,
        }
    }
}

/// Outcome of a read access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Level that satisfied the access.
    pub level: HitLevel,
    /// A remote CPU had the line modified and was downgraded (adds latency).
    pub remote_downgrade: bool,
    /// Directory entries evicted for capacity by this access; every sharer
    /// was back-invalidated, and callers must back-invalidate translation
    /// structures for page-table lines.
    pub back_invalidated: Vec<(CacheLineAddr, SharerSet, Option<PtKind>)>,
}

/// Outcome of a write access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The underlying access outcome.
    pub access: AccessOutcome,
    /// Page-table kind of the written line, as recorded by the directory.
    pub pt_kind: Option<PtKind>,
    /// CPUs (other than the writer) that were listed as sharers and received
    /// invalidation messages.  For page-table lines these are the CPUs whose
    /// translation structures must receive co-tag invalidations.
    pub invalidated_sharers: SharerSet,
    /// Among the invalidated sharers, those that did not actually hold the
    /// line in their private caches (spurious cache invalidations).
    pub spurious_sharers: SharerSet,
}

/// Aggregate statistics for the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// L1 hit/miss across all CPUs.
    pub l1: RatioStat,
    /// L2 hit/miss across all CPUs.
    pub l2: RatioStat,
    /// LLC hit/miss.
    pub llc: RatioStat,
    /// Accesses that went to DRAM.
    pub memory_accesses: Counter,
    /// Coherence invalidation messages sent to private caches.
    pub invalidations_sent: Counter,
    /// Invalidations that found nothing to invalidate in the target's caches.
    pub spurious_invalidations: Counter,
    /// Lines back-invalidated due to directory evictions.
    pub back_invalidations: Counter,
    /// Dirty lines written back.
    pub writebacks: Counter,
    /// Writes that hit lines marked as page tables.
    pub pt_line_writes: Counter,
}

/// The cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<PrivateCache>,
    l2: Vec<PrivateCache>,
    llc: PrivateCache,
    directory: CoherenceDirectory,
    config: CacheHierarchyConfig,
    llc_stats: RatioStat,
    stats: CacheStatsSnapshot,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero or greater than 64.
    #[must_use]
    pub fn new(config: CacheHierarchyConfig) -> Self {
        assert!(config.num_cpus > 0, "need at least one CPU");
        assert!(
            config.num_cpus <= 64,
            "directory sharer sets support at most 64 CPUs"
        );
        let l1 = (0..config.num_cpus)
            .map(|_| PrivateCache::new(config.l1))
            .collect();
        let l2 = (0..config.num_cpus)
            .map(|_| PrivateCache::new(config.l2))
            .collect();
        let llc = PrivateCache::new(PrivateCacheConfig {
            capacity_bytes: config.llc_bytes,
            ways: config.llc_ways,
        });
        Self {
            l1,
            l2,
            llc,
            directory: CoherenceDirectory::new(config.directory),
            config,
            llc_stats: RatioStat::new(),
            stats: CacheStatsSnapshot::default(),
        }
    }

    /// The configuration this hierarchy was built with.
    #[must_use]
    pub fn config(&self) -> &CacheHierarchyConfig {
        &self.config
    }

    /// Read-only access to the coherence directory.
    #[must_use]
    pub fn directory(&self) -> &CoherenceDirectory {
        &self.directory
    }

    /// Whether `cpu` currently holds `line` in its private caches.
    #[must_use]
    pub fn cpu_holds_line(&self, cpu: CpuId, line: CacheLineAddr) -> bool {
        self.l1[cpu.index()].probe(line).is_some() || self.l2[cpu.index()].probe(line).is_some()
    }

    fn handle_private_victim(&mut self, cpu: CpuId, line: CacheLineAddr, state: MesiState) {
        if state.is_dirty() {
            self.stats.writebacks.incr();
        }
        let is_pt = self
            .directory
            .entry(line)
            .map(|e| e.pt_kind().is_some())
            .unwrap_or(false);
        // Lazy sharer updates for page-table lines (HATRIC, Fig. 6); eager
        // for everything else or when the ablation flag is set.
        if !is_pt || self.config.eager_pt_directory_update {
            self.directory.remove_sharer(line, cpu);
        }
    }

    fn fill_private(&mut self, cpu: CpuId, line: CacheLineAddr, state: MesiState) {
        if let Some((victim_line, victim_state)) = self.l1[cpu.index()].fill(line, state) {
            if let Some((l2_victim, l2_state)) =
                self.l2[cpu.index()].fill(victim_line, victim_state)
            {
                self.handle_private_victim(cpu, l2_victim, l2_state);
            }
        }
        if let Some((l2_victim, l2_state)) = self.l2[cpu.index()].fill(line, state) {
            // Maintain inclusion: a line falling out of L2 leaves L1 too.
            self.l1[cpu.index()].invalidate(l2_victim);
            self.handle_private_victim(cpu, l2_victim, l2_state);
        }
    }

    fn process_directory_victim(
        &mut self,
        victim: Option<(CacheLineAddr, DirectoryEntry)>,
        out: &mut Vec<(CacheLineAddr, SharerSet, Option<PtKind>)>,
    ) {
        if let Some((line, entry)) = victim {
            for cpu in entry.sharers.iter() {
                self.l1[cpu.index()].invalidate(line);
                self.l2[cpu.index()].invalidate(line);
                self.stats.back_invalidations.incr();
            }
            out.push((line, entry.sharers, entry.pt_kind()));
        }
    }

    /// Performs a read by `cpu` of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn read(&mut self, cpu: CpuId, line: CacheLineAddr) -> AccessOutcome {
        assert!(cpu.index() < self.config.num_cpus, "unknown {cpu}");
        if self.l1[cpu.index()].lookup(line).is_some() {
            self.stats.l1.hit();
            return AccessOutcome {
                level: HitLevel::L1,
                remote_downgrade: false,
                back_invalidated: Vec::new(),
            };
        }
        self.stats.l1.miss();
        if let Some(state) = self.l2[cpu.index()].lookup(line) {
            self.stats.l2.hit();
            self.fill_private(cpu, line, state);
            return AccessOutcome {
                level: HitLevel::L2,
                remote_downgrade: false,
                back_invalidated: Vec::new(),
            };
        }
        self.stats.l2.miss();

        let (note, victim) = self.directory.note_read(line, cpu);
        let mut back = Vec::new();
        self.process_directory_victim(victim, &mut back);

        // Downgrade a remote modified/exclusive copy: the remote CPU keeps
        // the line in shared state; dirty data is forwarded and written back
        // (counted as an LLC-level hit).
        if let Some(owner) = note.downgraded_owner {
            if self.l1[owner.index()].probe(line) == Some(MesiState::Modified)
                || self.l2[owner.index()].probe(line) == Some(MesiState::Modified)
            {
                self.stats.writebacks.incr();
            }
            self.l1[owner.index()].set_state(line, MesiState::Shared);
            self.l2[owner.index()].set_state(line, MesiState::Shared);
        }

        let llc_hit = self.llc.lookup(line).is_some();
        self.llc_stats.record(llc_hit);
        self.stats
            .llc
            .record(llc_hit || note.downgraded_owner.is_some());
        let level = if llc_hit || note.downgraded_owner.is_some() {
            HitLevel::Llc
        } else {
            self.stats.memory_accesses.incr();
            self.llc.fill(line, MesiState::Shared);
            HitLevel::Memory
        };

        let fill_state = if note.allocated {
            MesiState::Exclusive
        } else {
            MesiState::Shared
        };
        self.fill_private(cpu, line, fill_state);
        AccessOutcome {
            level,
            remote_downgrade: note.downgraded_owner.is_some(),
            back_invalidated: back,
        }
    }

    /// Performs a write by `cpu` of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for the configured CPU count.
    pub fn write(&mut self, cpu: CpuId, line: CacheLineAddr) -> WriteOutcome {
        assert!(cpu.index() < self.config.num_cpus, "unknown {cpu}");
        // Silent upgrade when we already own the line.
        let l1_state = self.l1[cpu.index()].lookup(line);
        if let Some(state) = l1_state {
            self.stats.l1.hit();
            if state.can_write_silently() {
                self.l1[cpu.index()].set_state(line, MesiState::Modified);
                self.l2[cpu.index()].set_state(line, MesiState::Modified);
                return WriteOutcome {
                    access: AccessOutcome {
                        level: HitLevel::L1,
                        remote_downgrade: false,
                        back_invalidated: Vec::new(),
                    },
                    pt_kind: None,
                    invalidated_sharers: SharerSet::empty(),
                    spurious_sharers: SharerSet::empty(),
                };
            }
        } else {
            self.stats.l1.miss();
        }

        // Upgrade or miss: consult the directory.
        let (note, victim) = self.directory.note_write(line, cpu);
        let mut back = Vec::new();
        self.process_directory_victim(victim, &mut back);

        let mut spurious = SharerSet::empty();
        for target in note.invalidate_targets.iter() {
            self.stats.invalidations_sent.incr();
            let had_l1 = self.l1[target.index()].invalidate(line).is_some();
            let had_l2 = self.l2[target.index()].invalidate(line).is_some();
            if !had_l1 && !had_l2 {
                self.stats.spurious_invalidations.incr();
                spurious.add(target);
            }
        }
        if note.pt_kind.is_some() {
            self.stats.pt_line_writes.incr();
        }

        let llc_hit = self.llc.lookup(line).is_some();
        self.llc_stats.record(llc_hit);
        let had_locally = l1_state.is_some() || self.l2[cpu.index()].probe(line).is_some();
        self.stats.llc.record(llc_hit);
        let level = if had_locally {
            HitLevel::L2
        } else if llc_hit || !note.invalidate_targets.is_empty() {
            HitLevel::Llc
        } else {
            self.stats.memory_accesses.incr();
            self.llc.fill(line, MesiState::Modified);
            HitLevel::Memory
        };

        self.fill_private(cpu, line, MesiState::Modified);
        WriteOutcome {
            access: AccessOutcome {
                level,
                remote_downgrade: false,
                back_invalidated: back,
            },
            pt_kind: note.pt_kind,
            invalidated_sharers: note.invalidate_targets,
            spurious_sharers: spurious,
        }
    }

    /// Marks a line as holding page-table entries of the given kind (done by
    /// the hardware walker when it fills translation structures from a line
    /// whose accessed bit was clear).
    pub fn mark_pt_line(&mut self, line: CacheLineAddr, kind: PtKind) {
        self.directory.mark_pt(line, kind);
    }

    /// Lazily demotes `cpu` from `line`'s sharer list after the translation
    /// coherence layer found nothing to invalidate there.
    pub fn demote_sharer(&mut self, line: CacheLineAddr, cpu: CpuId) {
        self.directory.demote_after_spurious(line, cpu);
    }

    /// Aggregate statistics (directory statistics are available separately
    /// via [`CacheHierarchy::directory`]).
    #[must_use]
    pub fn stats(&self) -> CacheStatsSnapshot {
        self.stats
    }

    /// Resets the aggregate statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStatsSnapshot::default();
        self.llc_stats = RatioStat::new();
        for c in &mut self.l1 {
            c.reset_stats();
        }
        for c in &mut self.l2 {
            c.reset_stats();
        }
        self.llc.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLineAddr {
        CacheLineAddr::new(n * 64)
    }

    fn small_hierarchy(cpus: usize) -> CacheHierarchy {
        CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: cpus,
            l1: PrivateCacheConfig {
                capacity_bytes: 1024,
                ways: 2,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig::unbounded(),
            eager_pt_directory_update: false,
        })
    }

    #[test]
    fn first_read_misses_to_memory_then_hits_l1() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        let first = h.read(cpu, line(5));
        assert_eq!(first.level, HitLevel::Memory);
        let second = h.read(cpu, line(5));
        assert_eq!(second.level, HitLevel::L1);
    }

    #[test]
    fn cross_cpu_read_hits_llc() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(0), line(5));
        let other = h.read(CpuId::new(1), line(5));
        assert_eq!(other.level, HitLevel::Llc);
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut h = small_hierarchy(4);
        for cpu in 0..3 {
            h.read(CpuId::new(cpu), line(9));
        }
        let outcome = h.write(CpuId::new(3), line(9));
        assert_eq!(outcome.invalidated_sharers.count(), 3);
        // The remote copies are gone: re-reads go past L1/L2.
        let reread = h.read(CpuId::new(0), line(9));
        assert_ne!(reread.level, HitLevel::L1);
        assert_ne!(reread.level, HitLevel::L2);
    }

    #[test]
    fn silent_write_on_owned_line() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        h.write(cpu, line(3));
        let again = h.write(cpu, line(3));
        assert_eq!(again.access.level, HitLevel::L1);
        assert_eq!(again.invalidated_sharers.count(), 0);
    }

    #[test]
    fn pt_marked_line_reports_kind_on_write() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(0), line(7));
        h.mark_pt_line(line(7), PtKind::Nested);
        let outcome = h.write(CpuId::new(1), line(7));
        assert_eq!(outcome.pt_kind, Some(PtKind::Nested));
        assert!(outcome.invalidated_sharers.contains(CpuId::new(0)));
        assert_eq!(h.stats().pt_line_writes.get(), 1);
    }

    #[test]
    fn lazy_sharer_update_keeps_pt_sharers_after_eviction() {
        let mut h = small_hierarchy(2);
        let cpu = CpuId::new(0);
        h.read(cpu, line(1));
        h.mark_pt_line(line(1), PtKind::Nested);
        // Thrash CPU 0's tiny private caches so line 1 is evicted.
        for i in 100..400 {
            h.read(cpu, line(i));
        }
        assert!(!h.cpu_holds_line(cpu, line(1)));
        // The directory still lists CPU 0 as a sharer (lazy update), so a
        // remote write sends it a (spurious) invalidation.
        let outcome = h.write(CpuId::new(1), line(1));
        assert!(outcome.invalidated_sharers.contains(cpu));
        assert!(outcome.spurious_sharers.contains(cpu));
    }

    #[test]
    fn eager_update_removes_pt_sharers_after_eviction() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: 2,
            l1: PrivateCacheConfig {
                capacity_bytes: 1024,
                ways: 2,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig::unbounded(),
            eager_pt_directory_update: true,
        });
        let cpu = CpuId::new(0);
        h.read(cpu, line(1));
        h.mark_pt_line(line(1), PtKind::Nested);
        for i in 100..400 {
            h.read(cpu, line(i));
        }
        let outcome = h.write(CpuId::new(1), line(1));
        assert!(!outcome.invalidated_sharers.contains(cpu));
    }

    #[test]
    fn directory_eviction_back_invalidates() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig {
            num_cpus: 1,
            l1: PrivateCacheConfig {
                capacity_bytes: 4096,
                ways: 4,
            },
            l2: PrivateCacheConfig {
                capacity_bytes: 16 * 1024,
                ways: 4,
            },
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            directory: DirectoryConfig { max_entries: 8 },
            eager_pt_directory_update: false,
        });
        let cpu = CpuId::new(0);
        let mut saw_back_invalidation = false;
        for i in 0..64 {
            let out = h.read(cpu, line(i));
            if !out.back_invalidated.is_empty() {
                saw_back_invalidation = true;
            }
        }
        assert!(saw_back_invalidation);
        assert!(h.stats().back_invalidations.get() > 0);
    }

    #[test]
    fn remote_dirty_read_downgrades() {
        let mut h = small_hierarchy(2);
        h.write(CpuId::new(0), line(11));
        let out = h.read(CpuId::new(1), line(11));
        assert!(out.remote_downgrade);
        assert_eq!(out.level, HitLevel::Llc);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn out_of_range_cpu_panics() {
        let mut h = small_hierarchy(2);
        h.read(CpuId::new(9), line(0));
    }
}
