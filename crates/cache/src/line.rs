//! Cache-line coherence states and page-table line classification.

use serde::{Deserialize, Serialize};

/// MESI coherence states for lines in private caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MesiState {
    /// Modified: this CPU holds the only, dirty copy.
    Modified,
    /// Exclusive: this CPU holds the only, clean copy.
    Exclusive,
    /// Shared: one of possibly many clean copies.
    Shared,
    /// Invalid (not present).  Stored only transiently.
    Invalid,
}

impl MesiState {
    /// Whether a CPU holding the line in this state may write it without a
    /// coherence transaction.
    #[must_use]
    pub fn can_write_silently(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// Whether the line holds dirty data that must be written back on
    /// eviction.
    #[must_use]
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }
}

/// Which page table a cache line belongs to, if any.
///
/// The coherence directory records this with two bits per entry so that
/// writes to such lines can be relayed to translation structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtKind {
    /// The line holds guest page-table entries.
    Guest,
    /// The line holds nested page-table entries.
    Nested,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_write_permission() {
        assert!(MesiState::Modified.can_write_silently());
        assert!(MesiState::Exclusive.can_write_silently());
        assert!(!MesiState::Shared.can_write_silently());
        assert!(!MesiState::Invalid.can_write_silently());
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
    }
}
