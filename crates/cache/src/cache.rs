//! A set-associative private cache (tags + MESI state only).

use serde::{Deserialize, Serialize};

use hatric_types::consts::CACHE_LINE_BYTES;
use hatric_types::{CacheLineAddr, RatioStat};

use crate::line::MesiState;

/// Geometry of a private cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateCacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl PrivateCacheConfig {
    /// 32 KiB, 8-way L1 data cache (paper Sec. 5.1).
    #[must_use]
    pub fn l1_default() -> Self {
        Self {
            capacity_bytes: 32 * 1024,
            ways: 8,
        }
    }

    /// 256 KiB, 8-way private L2 cache.
    #[must_use]
    pub fn l2_default() -> Self {
        Self {
            capacity_bytes: 256 * 1024,
            ways: 8,
        }
    }

    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / CACHE_LINE_BYTES) as usize / self.ways
    }
}

#[derive(Debug, Clone)]
struct Way {
    line: CacheLineAddr,
    state: MesiState,
}

/// A private, set-associative, LRU cache tracking line tags and MESI state.
#[derive(Debug, Clone)]
pub struct PrivateCache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    stats: RatioStat,
}

impl PrivateCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    #[must_use]
    pub fn new(config: PrivateCacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        Self {
            sets: vec![Vec::with_capacity(config.ways); sets],
            ways: config.ways,
            stats: RatioStat::new(),
        }
    }

    fn set_index(&self, line: CacheLineAddr) -> usize {
        (line.index() as usize) % self.sets.len()
    }

    /// Looks up a line, promoting it to MRU.  Records hit/miss statistics.
    pub fn lookup(&mut self, line: CacheLineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.line == line);
        self.stats.record(pos.is_some());
        let pos = pos?;
        let way = self.sets[set].remove(pos);
        let state = way.state;
        self.sets[set].insert(0, way);
        Some(state)
    }

    /// Probes a line without recency or statistics effects.
    #[must_use]
    pub fn probe(&self, line: CacheLineAddr) -> Option<MesiState> {
        let set = (line.index() as usize) % self.sets.len();
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// Changes the MESI state of a present line; returns `false` if absent.
    pub fn set_state(&mut self, line: CacheLineAddr, state: MesiState) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.sets[set].iter_mut().find(|w| w.line == line) {
            way.state = state;
            true
        } else {
            false
        }
    }

    /// Inserts a line in the given state; returns the evicted victim
    /// (line, state) if the set overflowed.
    pub fn fill(
        &mut self,
        line: CacheLineAddr,
        state: MesiState,
    ) -> Option<(CacheLineAddr, MesiState)> {
        let set = self.set_index(line);
        if let Some(pos) = self.sets[set].iter().position(|w| w.line == line) {
            self.sets[set].remove(pos);
        }
        self.sets[set].insert(0, Way { line, state });
        if self.sets[set].len() > self.ways {
            self.sets[set].pop().map(|w| (w.line, w.state))
        } else {
            None
        }
    }

    /// Removes a line (coherence invalidation); returns its state if present.
    pub fn invalidate(&mut self, line: CacheLineAddr) -> Option<MesiState> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.line == line)?;
        Some(self.sets[set].remove(pos).state)
    }

    /// Number of valid lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the cache holds no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> RatioStat {
        self.stats
    }

    /// Resets hit/miss statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RatioStat::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLineAddr {
        CacheLineAddr::new(n * CACHE_LINE_BYTES)
    }

    #[test]
    fn geometry() {
        let cfg = PrivateCacheConfig::l1_default();
        assert_eq!(cfg.sets(), 64);
        let cache = PrivateCache::new(cfg);
        assert!(cache.is_empty());
    }

    #[test]
    fn fill_lookup_invalidate() {
        let mut cache = PrivateCache::new(PrivateCacheConfig::l1_default());
        cache.fill(line(3), MesiState::Exclusive);
        assert_eq!(cache.lookup(line(3)), Some(MesiState::Exclusive));
        assert_eq!(cache.invalidate(line(3)), Some(MesiState::Exclusive));
        assert_eq!(cache.lookup(line(3)), None);
        assert_eq!(cache.stats().hits(), 1);
        assert_eq!(cache.stats().misses(), 1);
    }

    #[test]
    fn eviction_returns_lru_victim() {
        // Tiny cache: 2 sets of 2 ways (256 bytes).
        let mut cache = PrivateCache::new(PrivateCacheConfig {
            capacity_bytes: 256,
            ways: 2,
        });
        // Lines 0, 2, 4 all map to set 0.
        cache.fill(line(0), MesiState::Shared);
        cache.fill(line(2), MesiState::Shared);
        cache.lookup(line(0));
        let victim = cache.fill(line(4), MesiState::Shared);
        assert_eq!(victim, Some((line(2), MesiState::Shared)));
    }

    #[test]
    fn set_state_upgrades() {
        let mut cache = PrivateCache::new(PrivateCacheConfig::l1_default());
        cache.fill(line(9), MesiState::Shared);
        assert!(cache.set_state(line(9), MesiState::Modified));
        assert_eq!(cache.probe(line(9)), Some(MesiState::Modified));
        assert!(!cache.set_state(line(10), MesiState::Modified));
    }
}
