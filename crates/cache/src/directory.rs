//! The coherence directory, extended with HATRIC's page-table bits.
//!
//! The directory tracks, per cache line, which CPUs may hold a copy (the
//! sharer list), which CPU (if any) holds it modified, and — HATRIC's
//! addition — whether the line holds guest or nested page-table entries.
//! Sharer lists are *coarse-grained* (per line, 8 PTEs) and
//! *pseudo-specific* (they do not distinguish private caches from
//! translation structures), exactly as Sec. 4.2 describes.
//!
//! Capacity is bounded; evicting a directory entry requires
//! back-invalidating the line in every sharer (and, with HATRIC, in their
//! translation structures), which the hierarchy layer performs.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use serde::{Deserialize, Serialize};

use hatric_types::{CacheLineAddr, Counter, CpuId};

use crate::line::PtKind;

/// Deterministic hashing for the entry map: capacity eviction samples the
/// map's iteration order, and `RandomState` would make two otherwise
/// identical simulations evict different victims.  The simulator promises
/// bit-identical results for a fixed seed, so the directory must too.
type DeterministicState = BuildHasherDefault<DefaultHasher>;

/// A set of CPUs, stored as a 64-bit mask.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharerSet(u64);

impl SharerSet {
    /// The empty set.
    #[must_use]
    pub const fn empty() -> Self {
        Self(0)
    }

    /// A set containing only `cpu`.
    #[must_use]
    pub fn only(cpu: CpuId) -> Self {
        let mut s = Self::empty();
        s.add(cpu);
        s
    }

    /// Adds a CPU to the set.
    ///
    /// # Panics
    ///
    /// Panics if the CPU index is 64 or greater.
    pub fn add(&mut self, cpu: CpuId) {
        assert!(cpu.index() < 64, "directory supports at most 64 CPUs");
        self.0 |= 1 << cpu.index();
    }

    /// Removes a CPU from the set.
    pub fn remove(&mut self, cpu: CpuId) {
        if cpu.index() < 64 {
            self.0 &= !(1 << cpu.index());
        }
    }

    /// Whether the set contains `cpu`.
    #[must_use]
    pub fn contains(&self, cpu: CpuId) -> bool {
        cpu.index() < 64 && (self.0 >> cpu.index()) & 1 == 1
    }

    /// Number of CPUs in the set.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// All CPUs in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..64u32)
            .filter(|i| (self.0 >> i) & 1 == 1)
            .map(CpuId::new)
    }

    /// Set difference: CPUs in `self` but not equal to `cpu`.
    #[must_use]
    pub fn without(mut self, cpu: CpuId) -> Self {
        self.remove(cpu);
        self
    }
}

/// One coherence-directory entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryEntry {
    /// CPUs that may hold a copy of the line (in caches *or* translation
    /// structures — the directory is pseudo-specific).
    pub sharers: SharerSet,
    /// CPU holding the line modified, if any.
    pub owner: Option<CpuId>,
    /// The line holds nested page-table entries.
    pub npt: bool,
    /// The line holds guest page-table entries.
    pub gpt: bool,
    /// Recency stamp used for victim selection.
    last_touch: u64,
}

impl DirectoryEntry {
    /// The page-table kind recorded for this line, if any.
    #[must_use]
    pub fn pt_kind(&self) -> Option<PtKind> {
        if self.npt {
            Some(PtKind::Nested)
        } else if self.gpt {
            Some(PtKind::Guest)
        } else {
            None
        }
    }
}

/// Directory sizing and behaviour knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryConfig {
    /// Maximum number of tracked lines; `0` means unbounded (the Fig. 12
    /// "No-back-inv" idealisation).
    pub max_entries: usize,
}

impl DirectoryConfig {
    /// A dual-grain-directory-sized default: enough entries to cover the
    /// 20 MiB LLC plus slack, as in the multi-grain directories HATRIC
    /// builds on.
    #[must_use]
    pub fn llc_sized() -> Self {
        Self {
            max_entries: (20 * 1024 * 1024 / 64) * 2,
        }
    }

    /// An unbounded directory (never back-invalidates).
    #[must_use]
    pub fn unbounded() -> Self {
        Self { max_entries: 0 }
    }
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        Self::llc_sized()
    }
}

/// Statistics kept by the directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryStats {
    /// Entries allocated.
    pub allocations: Counter,
    /// Entries evicted for capacity (each triggers back-invalidations).
    pub evictions: Counter,
    /// Writes observed to lines marked as page tables.
    pub pt_writes: Counter,
    /// Sharer demotions performed lazily after spurious invalidations.
    pub lazy_demotions: Counter,
}

/// The directory proper.
#[derive(Debug, Clone)]
pub struct CoherenceDirectory {
    entries: HashMap<CacheLineAddr, DirectoryEntry, DeterministicState>,
    config: DirectoryConfig,
    clock: u64,
    stats: DirectoryStats,
}

/// Result of informing the directory about a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadNote {
    /// A remote CPU held the line modified and must be downgraded.
    pub downgraded_owner: Option<CpuId>,
    /// Whether this read allocated a fresh directory entry.
    pub allocated: bool,
}

/// Result of informing the directory about a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteNote {
    /// CPUs other than the writer that must receive invalidations.
    pub invalidate_targets: SharerSet,
    /// Page-table kind of the line, if marked.
    pub pt_kind: Option<PtKind>,
    /// Whether this write allocated a fresh directory entry.
    pub allocated: bool,
}

impl CoherenceDirectory {
    /// Creates an empty directory.
    #[must_use]
    pub fn new(config: DirectoryConfig) -> Self {
        Self {
            entries: HashMap::default(),
            config,
            clock: 0,
            stats: DirectoryStats::default(),
        }
    }

    /// Number of tracked lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory tracks no lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Read-only view of an entry.
    #[must_use]
    pub fn entry(&self, line: CacheLineAddr) -> Option<&DirectoryEntry> {
        self.entries.get(&line)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DirectoryStats {
        self.stats
    }

    /// If over capacity, selects and removes a victim entry.  Returns the
    /// victim so the hierarchy can perform back-invalidations.
    fn evict_if_needed(
        &mut self,
        protect: CacheLineAddr,
    ) -> Option<(CacheLineAddr, DirectoryEntry)> {
        if self.config.max_entries == 0 || self.entries.len() <= self.config.max_entries {
            return None;
        }
        // Sample a handful of entries and evict the least recently touched.
        let victim = self
            .entries
            .iter()
            .filter(|(l, _)| **l != protect)
            .take(8)
            .min_by_key(|(_, e)| e.last_touch)
            .map(|(l, _)| *l)?;
        let entry = self.entries.remove(&victim)?;
        self.stats.evictions.incr();
        Some((victim, entry))
    }

    fn touch(entry: &mut DirectoryEntry, clock: u64) {
        entry.last_touch = clock;
    }

    /// Records that `cpu` read `line`.  Allocates an entry if needed and
    /// returns ownership-downgrade information plus any capacity victim.
    pub fn note_read(
        &mut self,
        line: CacheLineAddr,
        cpu: CpuId,
    ) -> (ReadNote, Option<(CacheLineAddr, DirectoryEntry)>) {
        self.clock += 1;
        let clock = self.clock;
        let allocated = !self.entries.contains_key(&line);
        if allocated {
            self.stats.allocations.incr();
        }
        let entry = self.entries.entry(line).or_default();
        Self::touch(entry, clock);
        let downgraded_owner = match entry.owner {
            Some(owner) if owner != cpu => {
                entry.owner = None;
                Some(owner)
            }
            _ => None,
        };
        entry.sharers.add(cpu);
        if allocated {
            // A fresh allocation grants the line Exclusive; remember the
            // owner so a later remote read downgrades that copy (E -> S).
            entry.owner = Some(cpu);
        }
        let note = ReadNote {
            downgraded_owner,
            allocated,
        };
        let victim = self.evict_if_needed(line);
        (note, victim)
    }

    /// Records that `cpu` wrote `line`.  Returns the set of other sharers to
    /// invalidate, the line's page-table marking, and any capacity victim.
    pub fn note_write(
        &mut self,
        line: CacheLineAddr,
        cpu: CpuId,
    ) -> (WriteNote, Option<(CacheLineAddr, DirectoryEntry)>) {
        self.clock += 1;
        let clock = self.clock;
        let allocated = !self.entries.contains_key(&line);
        if allocated {
            self.stats.allocations.incr();
        }
        let entry = self.entries.entry(line).or_default();
        Self::touch(entry, clock);
        let targets = entry.sharers.without(cpu);
        let pt_kind = entry.pt_kind();
        if pt_kind.is_some() {
            self.stats.pt_writes.incr();
        }
        entry.sharers = SharerSet::only(cpu);
        entry.owner = Some(cpu);
        let note = WriteNote {
            invalidate_targets: targets,
            pt_kind,
            allocated,
        };
        let victim = self.evict_if_needed(line);
        (note, victim)
    }

    /// Marks a line as holding page-table entries of the given kind.  Done
    /// by the hardware walker when it first fills translations from the line
    /// (i.e. when the PTE's accessed bit was clear).
    pub fn mark_pt(&mut self, line: CacheLineAddr, kind: PtKind) {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.entry(line).or_default();
        Self::touch(entry, clock);
        match kind {
            PtKind::Nested => entry.npt = true,
            PtKind::Guest => entry.gpt = true,
        }
    }

    /// Removes `cpu` from the sharer list of `line` (eager update on private
    /// cache eviction — used for non-page-table lines, and for page-table
    /// lines only in the Fig. 12 "EGR-dir-update" ablation).
    pub fn remove_sharer(&mut self, line: CacheLineAddr, cpu: CpuId) {
        if let Some(entry) = self.entries.get_mut(&line) {
            entry.sharers.remove(cpu);
            if entry.owner == Some(cpu) {
                entry.owner = None;
            }
            if entry.sharers.is_empty() && entry.pt_kind().is_none() {
                self.entries.remove(&line);
            }
        }
    }

    /// Lazily demotes `cpu` from the sharer list after it reported a
    /// spurious invalidation (the line was neither in its caches nor in its
    /// translation structures).
    pub fn demote_after_spurious(&mut self, line: CacheLineAddr, cpu: CpuId) {
        if let Some(entry) = self.entries.get_mut(&line) {
            entry.sharers.remove(cpu);
            self.stats.lazy_demotions.incr();
        }
    }

    /// Whether `cpu` is currently listed as a sharer of `line`.
    #[must_use]
    pub fn is_sharer(&self, line: CacheLineAddr, cpu: CpuId) -> bool {
        self.entries
            .get(&line)
            .map(|e| e.sharers.contains(cpu))
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> CacheLineAddr {
        CacheLineAddr::new(n * 64)
    }

    #[test]
    fn sharer_set_basics() {
        let mut s = SharerSet::empty();
        s.add(CpuId::new(3));
        s.add(CpuId::new(5));
        assert!(s.contains(CpuId::new(3)));
        assert!(!s.contains(CpuId::new(4)));
        assert_eq!(s.count(), 2);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![CpuId::new(3), CpuId::new(5)]
        );
        s.remove(CpuId::new(3));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn read_then_write_invalidates_other_sharers() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig::unbounded());
        dir.note_read(line(1), CpuId::new(0));
        dir.note_read(line(1), CpuId::new(3));
        let (note, _) = dir.note_write(line(1), CpuId::new(1));
        let targets: Vec<_> = note.invalidate_targets.iter().collect();
        assert_eq!(targets, vec![CpuId::new(0), CpuId::new(3)]);
        // After the write only CPU 1 remains a sharer/owner.
        assert!(dir.is_sharer(line(1), CpuId::new(1)));
        assert!(!dir.is_sharer(line(1), CpuId::new(0)));
    }

    #[test]
    fn pt_marking_survives_and_reports_on_write() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig::unbounded());
        dir.note_read(line(2), CpuId::new(0));
        dir.mark_pt(line(2), PtKind::Nested);
        let (note, _) = dir.note_write(line(2), CpuId::new(1));
        assert_eq!(note.pt_kind, Some(PtKind::Nested));
        assert_eq!(dir.stats().pt_writes.get(), 1);
    }

    #[test]
    fn owner_downgrade_on_remote_read() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig::unbounded());
        dir.note_write(line(4), CpuId::new(2));
        let (note, _) = dir.note_read(line(4), CpuId::new(5));
        assert_eq!(note.downgraded_owner, Some(CpuId::new(2)));
        // A second read sees no modified owner.
        let (note2, _) = dir.note_read(line(4), CpuId::new(6));
        assert_eq!(note2.downgraded_owner, None);
    }

    #[test]
    fn capacity_eviction_reports_victim() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig { max_entries: 4 });
        let mut victims = 0;
        for i in 0..16 {
            let (_, victim) = dir.note_read(line(i), CpuId::new(0));
            if victim.is_some() {
                victims += 1;
            }
        }
        assert!(victims > 0);
        assert!(dir.len() <= 5);
        assert_eq!(dir.stats().evictions.get() as usize, victims);
    }

    #[test]
    fn lazy_demotion_removes_sharer() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig::unbounded());
        dir.note_read(line(7), CpuId::new(0));
        dir.mark_pt(line(7), PtKind::Nested);
        dir.demote_after_spurious(line(7), CpuId::new(0));
        assert!(!dir.is_sharer(line(7), CpuId::new(0)));
        assert_eq!(dir.stats().lazy_demotions.get(), 1);
    }

    #[test]
    fn remove_sharer_drops_untracked_plain_lines() {
        let mut dir = CoherenceDirectory::new(DirectoryConfig::unbounded());
        dir.note_read(line(9), CpuId::new(0));
        dir.remove_sharer(line(9), CpuId::new(0));
        assert!(dir.entry(line(9)).is_none());
        // Page-table lines are retained even with no sharers.
        dir.note_read(line(10), CpuId::new(0));
        dir.mark_pt(line(10), PtKind::Guest);
        dir.remove_sharer(line(10), CpuId::new(0));
        assert!(dir.entry(line(10)).is_some());
    }
}
