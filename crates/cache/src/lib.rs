//! # hatric-cache
//!
//! The data-cache substrate of the HATRIC simulator: per-CPU private L1/L2
//! caches, a shared last-level cache, and a directory-based MESI coherence
//! protocol whose directory entries are extended with the two bits HATRIC
//! needs — `nPT` and `gPT` — marking cache lines that hold nested or guest
//! page-table entries (Sec. 4.2 of the paper).
//!
//! The hierarchy is *behavioural*: it tracks line presence, MESI-style
//! ownership, sharer lists, evictions and coherence messages, and reports
//! which level satisfied each access so the timing layer can charge
//! latencies.  It does not store data bytes.
//!
//! Key HATRIC-specific behaviours implemented here:
//!
//! * a write to a line whose directory entry is marked `nPT`/`gPT` reports
//!   the full sharer list so translation structures on those CPUs can be
//!   sent co-tag invalidations;
//! * sharer lists for page-table lines are updated **lazily**: evicting such
//!   a line from a private cache does not remove the CPU from the sharer
//!   list (the CPU may still cache translations from it); CPUs are demoted
//!   when a spurious invalidation reaches them (Fig. 6);
//! * directory-entry evictions trigger back-invalidations of the associated
//!   line in every sharer, and are reported so translation structures can be
//!   back-invalidated too.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod directory;
pub mod hierarchy;
pub mod line;

pub use cache::{PrivateCache, PrivateCacheConfig};
pub use directory::{CoherenceDirectory, DirectoryConfig, DirectoryEntry, SharerSet};
pub use hierarchy::{
    AccessOutcome, BankOutcome, CacheBank, CacheHierarchy, CacheHierarchyConfig, CacheStatsDelta,
    CacheStatsSnapshot, CommitOutcome, HitLevel, PrivEffect, PrivatePair, SharedCache,
    SharedCacheOp, SimAccess, SimWrite, WriteOutcome,
};
pub use line::{MesiState, PtKind};
