//! # hatric-pagetable
//!
//! x86-64-style 4-level radix page tables for virtualized address
//! translation, plus the *two-dimensional page-table walker* that a
//! hardware walker performs on a TLB miss in a virtualized system
//! (Sec. 2.1 of the paper).
//!
//! Two tables exist per virtual machine:
//!
//! * the **guest page table** ([`GuestPageTable`]) maps guest-virtual pages
//!   (GVPs) to guest-physical frames (GPPs) and is maintained by the guest
//!   OS; its nodes live in guest-physical memory;
//! * the **nested page table** ([`NestedPageTable`]) maps guest-physical
//!   frames to system-physical frames (SPPs) and is maintained by the
//!   hypervisor; its nodes live in system-physical memory.
//!
//! The walker ([`TwoDimWalker`]) produces, for a given GVP, the full ordered
//! list of *system-physical addresses of every page-table entry touched* by
//! the 24-reference two-dimensional walk.  Those addresses are exactly what
//! HATRIC's co-tags store and what the cache/coherence model consumes.
//!
//! ```
//! use hatric_pagetable::{GuestPageTable, NestedPageTable, TwoDimWalker};
//! use hatric_types::{GuestFrame, GuestVirtPage, SystemFrame};
//!
//! # fn main() -> Result<(), hatric_types::SimError> {
//! // Guest page-table nodes live in guest frames starting at 0x1000,
//! // nested page-table nodes in system frames starting at 0x8000.
//! let mut guest = GuestPageTable::new(GuestFrame::new(0x1000));
//! let mut nested = NestedPageTable::new(SystemFrame::new(0x8000));
//!
//! let gvp = GuestVirtPage::new(0x42);
//! guest.map(gvp, GuestFrame::new(0x77));
//! // Every guest-physical frame (data and page-table nodes) needs a nested
//! // mapping before the walker can find it.
//! for frame in guest.node_frames().iter().chain([GuestFrame::new(0x77)].iter()) {
//!     nested.map(*frame, SystemFrame::new(frame.number() + 0x10_0000));
//! }
//!
//! let walk = TwoDimWalker::walk(gvp, &guest, &nested)?;
//! assert_eq!(walk.memory_references(), 24);
//! assert_eq!(walk.spp, SystemFrame::new(0x77 + 0x10_0000));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod guest;
pub mod nested;
pub mod pte;
pub mod radix;
pub mod walker;

pub use guest::GuestPageTable;
pub use nested::NestedPageTable;
pub use pte::{Pte, PteFlags};
pub use radix::{MapOutcome, RadixTable};
pub use walker::{GuestWalkStep, NestedWalkSegment, TwoDimWalk, TwoDimWalker, WalkStepKind};
