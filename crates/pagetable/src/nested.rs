//! The nested page table: GPP → SPP, maintained by the hypervisor.

use hatric_types::{GuestFrame, SystemFrame, SystemPhysAddr};

use crate::pte::Pte;
use crate::radix::{MapOutcome, RadixTable};

/// A hypervisor-maintained nested page table mapping guest-physical frames to
/// system-physical frames.  Its radix nodes live directly in system-physical
/// memory (hypervisor memory), so walker steps through it are immediately
/// cacheable addresses.
///
/// The address returned by [`NestedPageTable::remap`] is the one HATRIC
/// co-tags store and the one a hypervisor store hits when it migrates a page
/// (Sec. 4.1).
#[derive(Debug, Clone)]
pub struct NestedPageTable {
    table: RadixTable,
}

impl NestedPageTable {
    /// Creates an empty nested page table whose nodes are allocated from
    /// system-physical frames starting at `node_frame_base`.
    #[must_use]
    pub fn new(node_frame_base: SystemFrame) -> Self {
        Self {
            table: RadixTable::new(node_frame_base.number()),
        }
    }

    /// Maps `gpp` to `spp`.
    pub fn map(&mut self, gpp: GuestFrame, spp: SystemFrame) -> NestedMapOutcome {
        let raw = self.table.map(gpp.number(), spp.number());
        NestedMapOutcome::from_raw(raw)
    }

    /// Removes the mapping for `gpp`, returning the old system frame.
    pub fn unmap(&mut self, gpp: GuestFrame) -> Option<SystemFrame> {
        self.table
            .unmap(gpp.number())
            .map(|pte| SystemFrame::new(pte.frame))
    }

    /// Redirects an existing mapping to `new_spp`, returning the
    /// system-physical address of the modified leaf entry — the address the
    /// hypervisor's store targets, and therefore the address whose cache line
    /// carries translation-coherence traffic.
    pub fn remap(&mut self, gpp: GuestFrame, new_spp: SystemFrame) -> Option<SystemPhysAddr> {
        self.table
            .remap(gpp.number(), new_spp.number())
            .map(SystemPhysAddr::new)
    }

    /// Translates `gpp` without side effects.
    #[must_use]
    pub fn translate(&self, gpp: GuestFrame) -> Option<SystemFrame> {
        self.table
            .translate(gpp.number())
            .map(|pte| SystemFrame::new(pte.frame))
    }

    /// Raw leaf entry (flags included) for `gpp`.
    #[must_use]
    pub fn leaf_entry(&self, gpp: GuestFrame) -> Option<Pte> {
        self.table.translate(gpp.number())
    }

    /// System-physical address of the leaf (nL1) entry for `gpp`.
    #[must_use]
    pub fn leaf_entry_addr(&self, gpp: GuestFrame) -> Option<SystemPhysAddr> {
        self.table
            .leaf_entry_addr(gpp.number())
            .map(SystemPhysAddr::new)
    }

    /// Marks the leaf entry accessed/dirty; returns whether the accessed bit
    /// was newly set.
    pub fn mark_used(&mut self, gpp: GuestFrame, write: bool) -> Option<bool> {
        self.table.mark_used(gpp.number(), write)
    }

    /// Full 4-level walk; each step is the system-physical address of the
    /// nested entry at levels 4..=1.
    #[must_use]
    pub fn walk(&self, gpp: GuestFrame) -> Option<(Vec<(u8, SystemPhysAddr)>, SystemFrame)> {
        self.table.walk(gpp.number()).map(|(refs, pte)| {
            let steps = refs
                .into_iter()
                .map(|r| (r.level, SystemPhysAddr::new(r.entry_addr)))
                .collect();
            (steps, SystemFrame::new(pte.frame))
        })
    }

    /// Number of mapped guest-physical frames.
    #[must_use]
    pub fn mapped_frames(&self) -> u64 {
        self.table.mapped_pages()
    }

    /// Every mapped guest-physical frame, ascending — the complete memory
    /// image of the VM (data pages, guest-page-table region, hypervisor
    /// backing frames), which is what a live migration must transfer.
    #[must_use]
    pub fn mapped_gpps(&self) -> Vec<GuestFrame> {
        self.table
            .mapped_keys()
            .into_iter()
            .map(GuestFrame::new)
            .collect()
    }

    /// System-physical frames occupied by the table's own radix nodes.
    #[must_use]
    pub fn node_frames(&self) -> Vec<SystemFrame> {
        self.table
            .node_frames()
            .into_iter()
            .map(SystemFrame::new)
            .collect()
    }
}

/// Outcome of [`NestedPageTable::map`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NestedMapOutcome {
    /// Newly allocated system-physical node frames (hypervisor memory).
    pub allocated_nodes: Vec<SystemFrame>,
    /// Whether the mapping replaced an existing one.
    pub replaced: bool,
}

impl NestedMapOutcome {
    fn from_raw(raw: MapOutcome) -> Self {
        Self {
            allocated_nodes: raw
                .allocated_nodes
                .into_iter()
                .map(SystemFrame::new)
                .collect(),
            replaced: raw.replaced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_unmap() {
        let mut npt = NestedPageTable::new(SystemFrame::new(0x9000));
        npt.map(GuestFrame::new(8), SystemFrame::new(5));
        assert_eq!(npt.translate(GuestFrame::new(8)), Some(SystemFrame::new(5)));
        assert_eq!(npt.unmap(GuestFrame::new(8)), Some(SystemFrame::new(5)));
        assert_eq!(npt.translate(GuestFrame::new(8)), None);
    }

    #[test]
    fn remap_matches_paper_example() {
        // The paper's running example: GVP 3 -> GPP 8 -> SPP 5, migrated to
        // SPP 512.  The nested leaf entry address must be stable across the
        // remap so co-tags stay valid.
        let mut npt = NestedPageTable::new(SystemFrame::new(0x9000));
        npt.map(GuestFrame::new(8), SystemFrame::new(5));
        let leaf = npt.leaf_entry_addr(GuestFrame::new(8)).unwrap();
        let store_addr = npt
            .remap(GuestFrame::new(8), SystemFrame::new(512))
            .unwrap();
        assert_eq!(leaf, store_addr);
        assert_eq!(
            npt.translate(GuestFrame::new(8)),
            Some(SystemFrame::new(512))
        );
    }

    #[test]
    fn walk_has_four_steps_in_descending_levels() {
        let mut npt = NestedPageTable::new(SystemFrame::new(0x9000));
        npt.map(GuestFrame::new(1234), SystemFrame::new(4321));
        let (steps, spp) = npt.walk(GuestFrame::new(1234)).unwrap();
        assert_eq!(spp, SystemFrame::new(4321));
        let levels: Vec<u8> = steps.iter().map(|s| s.0).collect();
        assert_eq!(levels, vec![4, 3, 2, 1]);
    }
}
