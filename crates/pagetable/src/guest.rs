//! The guest page table: GVP → GPP, maintained by the guest OS.

use hatric_types::{GuestFrame, GuestPhysAddr, GuestVirtPage};

use crate::pte::Pte;
use crate::radix::{MapOutcome, RadixTable};

/// A guest OS page table mapping guest-virtual pages to guest-physical
/// frames.  Its radix nodes live in guest-physical memory, so every node
/// frame reported by [`GuestPageTable::map`] must also be given a nested
/// mapping before a two-dimensional walk can locate it.
#[derive(Debug, Clone)]
pub struct GuestPageTable {
    table: RadixTable,
}

impl GuestPageTable {
    /// Creates an empty guest page table whose nodes are allocated from
    /// guest-physical frames starting at `node_frame_base`.
    #[must_use]
    pub fn new(node_frame_base: GuestFrame) -> Self {
        Self {
            table: RadixTable::new(node_frame_base.number()),
        }
    }

    /// Maps `gvp` to `gpp`.  The returned outcome lists guest-physical node
    /// frames that were newly allocated and still need nested mappings.
    pub fn map(&mut self, gvp: GuestVirtPage, gpp: GuestFrame) -> GuestMapOutcome {
        let raw = self.table.map(gvp.number(), gpp.number());
        GuestMapOutcome::from_raw(raw)
    }

    /// Removes the mapping for `gvp`.
    pub fn unmap(&mut self, gvp: GuestVirtPage) -> Option<GuestFrame> {
        self.table
            .unmap(gvp.number())
            .map(|pte| GuestFrame::new(pte.frame))
    }

    /// Redirects an existing mapping to `new_gpp`, returning the
    /// guest-physical address of the modified leaf entry (the address the
    /// guest OS stores to).
    pub fn remap(&mut self, gvp: GuestVirtPage, new_gpp: GuestFrame) -> Option<GuestPhysAddr> {
        self.table
            .remap(gvp.number(), new_gpp.number())
            .map(GuestPhysAddr::new)
    }

    /// Translates `gvp` without side effects.
    #[must_use]
    pub fn translate(&self, gvp: GuestVirtPage) -> Option<GuestFrame> {
        self.table
            .translate(gvp.number())
            .map(|pte| GuestFrame::new(pte.frame))
    }

    /// Raw leaf entry (flags included) for `gvp`.
    #[must_use]
    pub fn leaf_entry(&self, gvp: GuestVirtPage) -> Option<Pte> {
        self.table.translate(gvp.number())
    }

    /// Guest-physical address of the leaf entry for `gvp`.
    #[must_use]
    pub fn leaf_entry_addr(&self, gvp: GuestVirtPage) -> Option<GuestPhysAddr> {
        self.table
            .leaf_entry_addr(gvp.number())
            .map(GuestPhysAddr::new)
    }

    /// Marks the leaf entry for `gvp` accessed/dirty; returns whether the
    /// accessed bit was newly set.
    pub fn mark_used(&mut self, gvp: GuestVirtPage, write: bool) -> Option<bool> {
        self.table.mark_used(gvp.number(), write)
    }

    /// Full 4-level walk; each step is the guest-physical address of the
    /// entry at levels 4..=1.
    #[must_use]
    pub fn walk(&self, gvp: GuestVirtPage) -> Option<(Vec<(u8, GuestPhysAddr)>, GuestFrame)> {
        self.table.walk(gvp.number()).map(|(refs, pte)| {
            let steps = refs
                .into_iter()
                .map(|r| (r.level, GuestPhysAddr::new(r.entry_addr)))
                .collect();
            (steps, GuestFrame::new(pte.frame))
        })
    }

    /// Number of mapped guest-virtual pages.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.table.mapped_pages()
    }

    /// Guest-physical frames occupied by the table's own radix nodes.
    #[must_use]
    pub fn node_frames(&self) -> Vec<GuestFrame> {
        self.table
            .node_frames()
            .into_iter()
            .map(GuestFrame::new)
            .collect()
    }
}

/// Outcome of [`GuestPageTable::map`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GuestMapOutcome {
    /// Newly allocated guest-physical node frames that need nested mappings.
    pub allocated_nodes: Vec<GuestFrame>,
    /// Whether the mapping replaced an existing one.
    pub replaced: bool,
}

impl GuestMapOutcome {
    fn from_raw(raw: MapOutcome) -> Self {
        Self {
            allocated_nodes: raw
                .allocated_nodes
                .into_iter()
                .map(GuestFrame::new)
                .collect(),
            replaced: raw.replaced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_translate() {
        let mut gpt = GuestPageTable::new(GuestFrame::new(0x500));
        let out = gpt.map(GuestVirtPage::new(0x33), GuestFrame::new(0x44));
        assert_eq!(out.allocated_nodes.len(), 3);
        assert_eq!(
            gpt.translate(GuestVirtPage::new(0x33)),
            Some(GuestFrame::new(0x44))
        );
    }

    #[test]
    fn node_frames_start_at_base() {
        let gpt = GuestPageTable::new(GuestFrame::new(0x500));
        assert_eq!(gpt.node_frames(), vec![GuestFrame::new(0x500)]);
    }

    #[test]
    fn walk_reports_guest_physical_steps() {
        let mut gpt = GuestPageTable::new(GuestFrame::new(0x500));
        gpt.map(GuestVirtPage::new(7), GuestFrame::new(9));
        let (steps, frame) = gpt.walk(GuestVirtPage::new(7)).unwrap();
        assert_eq!(steps.len(), 4);
        assert_eq!(frame, GuestFrame::new(9));
        assert_eq!(steps[0].0, 4);
    }

    #[test]
    fn remap_reports_store_address() {
        let mut gpt = GuestPageTable::new(GuestFrame::new(0x500));
        gpt.map(GuestVirtPage::new(7), GuestFrame::new(9));
        let addr = gpt
            .remap(GuestVirtPage::new(7), GuestFrame::new(10))
            .unwrap();
        assert_eq!(gpt.leaf_entry_addr(GuestVirtPage::new(7)), Some(addr));
    }
}
