//! Page-table entries and their architectural status bits.

use serde::{Deserialize, Serialize};

/// Status bits carried by a page-table entry.
///
/// Only the bits the simulator cares about are modelled: `present`,
/// `writable`, `accessed` and `dirty`.  The accessed bit matters to HATRIC
/// because the hardware walker uses it to decide whether a directory entry
/// already carries the nPT/gPT marking (Sec. 4.2, "Directory entry changes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PteFlags {
    /// The mapping is valid and may be used for translation.
    pub present: bool,
    /// The page may be written.
    pub writable: bool,
    /// Set by the hardware walker the first time the entry is used for a
    /// translation fill.
    pub accessed: bool,
    /// Set by the hardware walker on the first write through this mapping.
    pub dirty: bool,
}

impl PteFlags {
    /// Flags for a freshly created, present and writable mapping.
    #[must_use]
    pub fn present_rw() -> Self {
        Self {
            present: true,
            writable: true,
            accessed: false,
            dirty: false,
        }
    }
}

/// A leaf page-table entry: a target frame number plus status flags.
///
/// The frame number is interpreted in the address space of the table that
/// holds the entry (guest-physical for guest tables, system-physical for
/// nested tables); the strongly typed wrappers in [`crate::guest`] and
/// [`crate::nested`] take care of that distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Pte {
    /// Target frame number (4 KiB granular).
    pub frame: u64,
    /// Architectural status bits.
    pub flags: PteFlags,
}

impl Pte {
    /// Creates a present, writable mapping to `frame`.
    #[must_use]
    pub fn mapping(frame: u64) -> Self {
        Self {
            frame,
            flags: PteFlags::present_rw(),
        }
    }

    /// Returns `true` if the entry may be used for translation.
    #[must_use]
    pub fn is_present(&self) -> bool {
        self.flags.present
    }

    /// Marks the entry accessed (done by the hardware page-table walker on a
    /// translation-structure fill) and reports whether the bit was newly set.
    pub fn mark_accessed(&mut self) -> bool {
        let newly = !self.flags.accessed;
        self.flags.accessed = true;
        newly
    }

    /// Marks the entry dirty (hardware walker, on a write through the
    /// mapping) and reports whether the bit was newly set.
    pub fn mark_dirty(&mut self) -> bool {
        let newly = !self.flags.dirty;
        self.flags.dirty = true;
        newly
    }

    /// Clears the accessed and dirty bits (software page-replacement scans).
    pub fn clear_accessed_dirty(&mut self) {
        self.flags.accessed = false;
        self.flags.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_present_and_writable() {
        let pte = Pte::mapping(0x1234);
        assert!(pte.is_present());
        assert!(pte.flags.writable);
        assert!(!pte.flags.accessed);
    }

    #[test]
    fn accessed_bit_reports_transition() {
        let mut pte = Pte::mapping(1);
        assert!(pte.mark_accessed());
        assert!(!pte.mark_accessed());
        pte.clear_accessed_dirty();
        assert!(pte.mark_accessed());
    }

    #[test]
    fn dirty_bit_reports_transition() {
        let mut pte = Pte::mapping(1);
        assert!(pte.mark_dirty());
        assert!(!pte.mark_dirty());
    }

    #[test]
    fn default_is_not_present() {
        assert!(!Pte::default().is_present());
    }
}
