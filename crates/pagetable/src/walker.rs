//! The two-dimensional page-table walker.
//!
//! On a TLB miss in a virtualized system the hardware walker must translate
//! the requested GVP through *both* page tables: every guest page-table
//! level's guest-physical address must itself be translated by a full nested
//! walk before the guest entry can be read (Fig. 1 of the paper).  The
//! result is the famous 24-memory-reference walk: four nested lookups for
//! each of the four guest levels (16), one read per guest level (4), and a
//! final nested walk for the data GPP (4).
//!
//! [`TwoDimWalker::walk`] performs that traversal functionally and returns a
//! [`TwoDimWalk`] describing every page-table entry touched, in order, with
//! its system-physical address — the raw material for the timing model
//! (which decides which steps are skipped thanks to MMU-cache / nTLB hits)
//! and for HATRIC's co-tags (which record the address of the nested leaf
//! entry).

use hatric_types::{
    GuestFrame, GuestVirtPage, PageSize, Result, SimError, SystemFrame, SystemPhysAddr,
};

use crate::guest::GuestPageTable;
use crate::nested::NestedPageTable;

/// Which structure a walk step reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkStepKind {
    /// A nested page-table entry read performed while translating the
    /// guest-physical address of guest level `for_guest_level`
    /// (0 means the final data translation).
    Nested {
        /// Guest level this nested lookup serves (4..=1, or 0 for data).
        for_guest_level: u8,
        /// Nested page-table level being read (4..=1).
        nested_level: u8,
    },
    /// A guest page-table entry read at the given guest level (4..=1).
    Guest {
        /// Guest page-table level being read (4..=1).
        level: u8,
    },
}

/// A full nested walk translating one guest-physical frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedWalkSegment {
    /// The guest-physical frame being translated.
    pub gpp: GuestFrame,
    /// System-physical addresses of the nested entries read (nL4..nL1).
    pub step_addrs: Vec<SystemPhysAddr>,
    /// The resulting system-physical frame.
    pub spp: SystemFrame,
}

impl NestedWalkSegment {
    /// Address of the nested leaf (nL1) entry — the co-tag source for this
    /// translation.
    #[must_use]
    pub fn leaf_pte_addr(&self) -> SystemPhysAddr {
        *self
            .step_addrs
            .last()
            .expect("a nested walk always has at least one step")
    }
}

/// One guest level of the two-dimensional walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuestWalkStep {
    /// Guest page-table level (4 = gL4 root .. 1 = gL1 leaf).
    pub level: u8,
    /// Nested translation of the guest table node's guest-physical frame.
    pub table_segment: NestedWalkSegment,
    /// System-physical address of the guest entry that is read at this level.
    pub guest_pte_addr: SystemPhysAddr,
}

/// The complete result of a two-dimensional page-table walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoDimWalk {
    /// The guest-virtual page that was translated.
    pub gvp: GuestVirtPage,
    /// The four guest-level steps (gL4 .. gL1), each with its supporting
    /// nested walk.
    pub guest_steps: Vec<GuestWalkStep>,
    /// Nested translation of the final data guest-physical frame.
    pub data_segment: NestedWalkSegment,
    /// The guest-physical frame the guest page table maps `gvp` to.
    pub gpp: GuestFrame,
    /// The system-physical frame the data finally resides in.
    pub spp: SystemFrame,
    /// Page size of the final translation (always 4 KiB in this model).
    pub page_size: PageSize,
}

impl TwoDimWalk {
    /// Total number of memory references this walk performs when nothing is
    /// cached (the paper's 24).
    #[must_use]
    pub fn memory_references(&self) -> usize {
        self.guest_steps
            .iter()
            .map(|s| s.table_segment.step_addrs.len() + 1)
            .sum::<usize>()
            + self.data_segment.step_addrs.len()
    }

    /// All system-physical addresses touched, in walk order, labelled with
    /// the structure they belong to.
    #[must_use]
    pub fn steps(&self) -> Vec<(WalkStepKind, SystemPhysAddr)> {
        let mut out = Vec::with_capacity(self.memory_references());
        for step in &self.guest_steps {
            for (i, addr) in step.table_segment.step_addrs.iter().enumerate() {
                out.push((
                    WalkStepKind::Nested {
                        for_guest_level: step.level,
                        nested_level: 4 - i as u8,
                    },
                    *addr,
                ));
            }
            out.push((
                WalkStepKind::Guest { level: step.level },
                step.guest_pte_addr,
            ));
        }
        for (i, addr) in self.data_segment.step_addrs.iter().enumerate() {
            out.push((
                WalkStepKind::Nested {
                    for_guest_level: 0,
                    nested_level: 4 - i as u8,
                },
                *addr,
            ));
        }
        out
    }

    /// System-physical address of the nested leaf entry mapping the *data*
    /// page — the address HATRIC stores in the TLB co-tag for this
    /// translation.
    #[must_use]
    pub fn nested_leaf_pte_addr(&self) -> SystemPhysAddr {
        self.data_segment.leaf_pte_addr()
    }

    /// System-physical address of the guest leaf (gL1) entry.
    #[must_use]
    pub fn guest_leaf_pte_addr(&self) -> SystemPhysAddr {
        self.guest_steps
            .last()
            .expect("a two-dimensional walk always has guest steps")
            .guest_pte_addr
    }
}

/// The hardware two-dimensional page-table walker.
///
/// The walker is stateless; per-CPU walker occupancy/latency is modelled by
/// the timing layer in `hatric-core`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoDimWalker;

impl TwoDimWalker {
    /// Translates one guest-physical frame through the nested table,
    /// recording every entry address touched.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedGuestFrame`] if any nested level is
    /// missing.
    pub fn nested_walk(gpp: GuestFrame, nested: &NestedPageTable) -> Result<NestedWalkSegment> {
        let (steps, spp) = nested.walk(gpp).ok_or(SimError::UnmappedGuestFrame {
            frame: gpp.number(),
        })?;
        Ok(NestedWalkSegment {
            gpp,
            step_addrs: steps.into_iter().map(|(_, addr)| addr).collect(),
            spp,
        })
    }

    /// Performs the full two-dimensional walk for `gvp`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmappedPage`] if the guest page table does not
    /// map `gvp`, or [`SimError::UnmappedGuestFrame`] if any guest-physical
    /// frame involved (guest page-table nodes or the data frame) has no
    /// nested mapping.
    pub fn walk(
        gvp: GuestVirtPage,
        guest: &GuestPageTable,
        nested: &NestedPageTable,
    ) -> Result<TwoDimWalk> {
        let (guest_refs, gpp) = guest
            .walk(gvp)
            .ok_or(SimError::UnmappedPage { page: gvp.number() })?;

        let mut guest_steps = Vec::with_capacity(guest_refs.len());
        for (level, gpa) in guest_refs {
            // Translate the guest table node's frame through the nested table.
            let node_gpp = gpa.frame(PageSize::Base);
            let segment = Self::nested_walk(node_gpp, nested)?;
            // The guest PTE lives at the translated system frame plus the
            // entry's offset within its node page.
            let guest_pte_addr = segment.spp.addr_at(gpa.page_offset(PageSize::Base));
            guest_steps.push(GuestWalkStep {
                level,
                table_segment: segment,
                guest_pte_addr,
            });
        }

        let data_segment = Self::nested_walk(gpp, nested)?;
        let spp = data_segment.spp;
        Ok(TwoDimWalk {
            gvp,
            guest_steps,
            data_segment,
            gpp,
            spp,
            page_size: PageSize::Base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatric_types::consts::TWO_DIM_WALK_REFS;

    fn build_tables(
        gvp: GuestVirtPage,
        gpp: GuestFrame,
        spp: SystemFrame,
    ) -> (GuestPageTable, NestedPageTable) {
        let mut guest = GuestPageTable::new(GuestFrame::new(0x10_000));
        let mut nested = NestedPageTable::new(SystemFrame::new(0x80_000));
        let out = guest.map(gvp, gpp);
        // Nested-map the data frame and every guest page-table node frame.
        nested.map(gpp, spp);
        for node in guest.node_frames() {
            nested.map(node, SystemFrame::new(node.number() + 0x100_000));
        }
        let _ = out;
        (guest, nested)
    }

    #[test]
    fn walk_produces_24_references() {
        let gvp = GuestVirtPage::new(3);
        let (guest, nested) = build_tables(gvp, GuestFrame::new(8), SystemFrame::new(5));
        let walk = TwoDimWalker::walk(gvp, &guest, &nested).unwrap();
        assert_eq!(walk.memory_references(), TWO_DIM_WALK_REFS);
        assert_eq!(walk.steps().len(), TWO_DIM_WALK_REFS);
        assert_eq!(walk.gpp, GuestFrame::new(8));
        assert_eq!(walk.spp, SystemFrame::new(5));
    }

    #[test]
    fn steps_order_matches_figure_1() {
        let gvp = GuestVirtPage::new(0x1234);
        let (guest, nested) = build_tables(gvp, GuestFrame::new(0x88), SystemFrame::new(0x99));
        let walk = TwoDimWalker::walk(gvp, &guest, &nested).unwrap();
        let steps = walk.steps();
        // First four steps are the nested walk for gL4, then the gL4 read.
        for (i, (kind, _)) in steps.iter().take(4).enumerate() {
            assert_eq!(
                *kind,
                WalkStepKind::Nested {
                    for_guest_level: 4,
                    nested_level: 4 - i as u8
                }
            );
        }
        assert_eq!(steps[4].0, WalkStepKind::Guest { level: 4 });
        // The last four steps translate the data GPP.
        for (i, (kind, _)) in steps.iter().rev().take(4).rev().enumerate() {
            assert_eq!(
                *kind,
                WalkStepKind::Nested {
                    for_guest_level: 0,
                    nested_level: 4 - i as u8
                }
            );
        }
    }

    #[test]
    fn cotag_source_is_data_nested_leaf() {
        let gvp = GuestVirtPage::new(77);
        let (guest, nested) = build_tables(gvp, GuestFrame::new(123), SystemFrame::new(456));
        let walk = TwoDimWalker::walk(gvp, &guest, &nested).unwrap();
        assert_eq!(
            walk.nested_leaf_pte_addr(),
            nested.leaf_entry_addr(GuestFrame::new(123)).unwrap()
        );
    }

    #[test]
    fn unmapped_gvp_errors() {
        let (guest, nested) = build_tables(
            GuestVirtPage::new(1),
            GuestFrame::new(2),
            SystemFrame::new(3),
        );
        let err = TwoDimWalker::walk(GuestVirtPage::new(99), &guest, &nested).unwrap_err();
        assert!(matches!(err, SimError::UnmappedPage { .. }));
    }

    #[test]
    fn missing_nested_mapping_errors() {
        let gvp = GuestVirtPage::new(1);
        let mut guest = GuestPageTable::new(GuestFrame::new(0x10_000));
        let nested = NestedPageTable::new(SystemFrame::new(0x80_000));
        guest.map(gvp, GuestFrame::new(2));
        let err = TwoDimWalker::walk(gvp, &guest, &nested).unwrap_err();
        assert!(matches!(err, SimError::UnmappedGuestFrame { .. }));
    }

    #[test]
    fn remap_changes_walk_result_but_not_cotag_address() {
        let gvp = GuestVirtPage::new(3);
        let (guest, mut nested) = build_tables(gvp, GuestFrame::new(8), SystemFrame::new(5));
        let before = TwoDimWalker::walk(gvp, &guest, &nested).unwrap();
        let store_addr = nested
            .remap(GuestFrame::new(8), SystemFrame::new(512))
            .unwrap();
        let after = TwoDimWalker::walk(gvp, &guest, &nested).unwrap();
        assert_eq!(after.spp, SystemFrame::new(512));
        assert_eq!(before.nested_leaf_pte_addr(), after.nested_leaf_pte_addr());
        assert_eq!(before.nested_leaf_pte_addr(), store_addr);
    }
}
