//! A generic 4-level forward-mapped radix page table.
//!
//! Both the guest and the nested page table are instances of [`RadixTable`];
//! they differ only in the address space their *nodes* occupy and the
//! interpretation of the frames stored in leaf entries.  The table hands out
//! node frames from a bump allocator rooted at a caller-supplied base frame,
//! which is how the simulator knows the physical location — and therefore the
//! cache-line address — of every page-table entry.

use hatric_types::consts::{PTE_BYTES, RADIX_BITS_PER_LEVEL, RADIX_FANOUT, RADIX_LEVELS};
use hatric_types::PAGE_SIZE_4K;

use crate::pte::Pte;

/// Index of a node within [`RadixTable::nodes`].
type NodeIndex = usize;

/// One entry of an interior or leaf radix node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Slot {
    /// Nothing mapped below this entry.
    #[default]
    Empty,
    /// An interior entry pointing at a lower-level node.
    Table(NodeIndex),
    /// A leaf entry holding a translation.
    Leaf(Pte),
}

/// One 512-entry radix node, pinned to a frame in the table's address space.
#[derive(Debug, Clone)]
struct Node {
    /// Frame number (in the table's own address space) holding this node.
    frame: u64,
    slots: Vec<Slot>,
}

impl Node {
    fn new(frame: u64) -> Self {
        Self {
            frame,
            slots: vec![Slot::Empty; RADIX_FANOUT],
        }
    }

    /// Byte address (within the table's own address space) of slot `index`.
    fn slot_addr(&self, index: usize) -> u64 {
        self.frame * PAGE_SIZE_4K + index as u64 * PTE_BYTES
    }
}

/// Result of a `map` operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MapOutcome {
    /// Frame numbers (in the table's own address space) of radix nodes that
    /// had to be allocated to complete the mapping.  Callers that manage a
    /// second translation stage (the guest page table's nodes live in
    /// guest-physical memory, which itself needs nested mappings) must map
    /// these before walking.
    pub allocated_nodes: Vec<u64>,
    /// `true` if the leaf entry already held a present mapping that this
    /// `map` overwrote.
    pub replaced: bool,
}

/// A 4-level, 512-ary radix page table.
#[derive(Debug, Clone)]
pub struct RadixTable {
    nodes: Vec<Node>,
    root: NodeIndex,
    next_node_frame: u64,
    mapped_pages: u64,
}

/// The address of one page-table entry visited during a walk, together with
/// the entry's level (4 = root .. 1 = leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef {
    /// Level of the node holding the entry (4 = root, 1 = leaf).
    pub level: u8,
    /// Byte address of the entry in the table's own address space.
    pub entry_addr: u64,
}

impl RadixTable {
    /// Creates an empty table whose nodes are bump-allocated starting at
    /// `node_frame_base` (a frame number in the table's own address space).
    #[must_use]
    pub fn new(node_frame_base: u64) -> Self {
        let root = Node::new(node_frame_base);
        Self {
            nodes: vec![root],
            root: 0,
            next_node_frame: node_frame_base + 1,
            mapped_pages: 0,
        }
    }

    /// Number of leaf mappings currently present.
    #[must_use]
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Number of radix nodes (pages of page-table memory) in use.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Frame numbers (in the table's own address space) of every node.
    #[must_use]
    pub fn node_frames(&self) -> Vec<u64> {
        self.nodes.iter().map(|n| n.frame).collect()
    }

    /// Page numbers of every present leaf mapping, in ascending order.
    /// Live migration snapshots this to build its initial copy set.
    #[must_use]
    pub fn mapped_keys(&self) -> Vec<u64> {
        let mut keys = Vec::with_capacity(self.mapped_pages as usize);
        self.collect_keys(self.root, 0, &mut keys);
        keys
    }

    /// Depth-first, slot-ordered traversal: prefixes grow by 9 bits per
    /// level, so visiting slots in index order yields ascending page
    /// numbers (depth is bounded by `RADIX_LEVELS` = 4).
    fn collect_keys(&self, node: NodeIndex, prefix: u64, out: &mut Vec<u64>) {
        for (idx, slot) in self.nodes[node].slots.iter().enumerate() {
            let page = (prefix << RADIX_BITS_PER_LEVEL) | idx as u64;
            match slot {
                Slot::Empty => {}
                Slot::Leaf(_) => out.push(page),
                Slot::Table(next) => self.collect_keys(*next, page, out),
            }
        }
    }

    fn level_index(page: u64, level: u8) -> usize {
        debug_assert!((1..=RADIX_LEVELS as u8).contains(&level));
        ((page >> (RADIX_BITS_PER_LEVEL as u64 * (u64::from(level) - 1)))
            & ((RADIX_FANOUT - 1) as u64)) as usize
    }

    /// Maps `page` to `frame`, allocating interior nodes as needed.
    pub fn map(&mut self, page: u64, frame: u64) -> MapOutcome {
        let mut outcome = MapOutcome::default();
        let mut node = self.root;
        for level in (2..=RADIX_LEVELS as u8).rev() {
            let idx = Self::level_index(page, level);
            let next = match self.nodes[node].slots[idx] {
                Slot::Table(next) => next,
                Slot::Empty | Slot::Leaf(_) => {
                    let new_frame = self.next_node_frame;
                    self.next_node_frame += 1;
                    let new_index = self.nodes.len();
                    self.nodes.push(Node::new(new_frame));
                    self.nodes[node].slots[idx] = Slot::Table(new_index);
                    outcome.allocated_nodes.push(new_frame);
                    new_index
                }
            };
            node = next;
        }
        let leaf_idx = Self::level_index(page, 1);
        let slot = &mut self.nodes[node].slots[leaf_idx];
        outcome.replaced = matches!(slot, Slot::Leaf(p) if p.is_present());
        if !outcome.replaced {
            self.mapped_pages += 1;
        }
        *slot = Slot::Leaf(Pte::mapping(frame));
        outcome
    }

    /// Removes the mapping for `page`; returns the old entry if one existed.
    pub fn unmap(&mut self, page: u64) -> Option<Pte> {
        let node = self.leaf_node(page)?;
        let leaf_idx = Self::level_index(page, 1);
        match self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => {
                self.nodes[node].slots[leaf_idx] = Slot::Empty;
                self.mapped_pages -= 1;
                Some(pte)
            }
            _ => None,
        }
    }

    /// Changes the frame an existing mapping points to, preserving flags.
    /// Returns the address of the modified leaf entry, or `None` if the page
    /// was not mapped.
    pub fn remap(&mut self, page: u64, new_frame: u64) -> Option<u64> {
        let node = self.leaf_node(page)?;
        let leaf_idx = Self::level_index(page, 1);
        match &mut self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => {
                pte.frame = new_frame;
                Some(self.nodes[node].slot_addr(leaf_idx))
            }
            _ => None,
        }
    }

    /// Looks up the leaf entry for `page` without touching status bits.
    #[must_use]
    pub fn translate(&self, page: u64) -> Option<Pte> {
        let node = self.leaf_node(page)?;
        let leaf_idx = Self::level_index(page, 1);
        match self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => Some(pte),
            _ => None,
        }
    }

    /// Returns the byte address (in the table's own address space) of the
    /// leaf entry for `page`, if it is mapped.
    #[must_use]
    pub fn leaf_entry_addr(&self, page: u64) -> Option<u64> {
        let node = self.leaf_node(page)?;
        let leaf_idx = Self::level_index(page, 1);
        match self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => Some(self.nodes[node].slot_addr(leaf_idx)),
            _ => None,
        }
    }

    /// Marks the leaf entry for `page` accessed (and dirty if `write`);
    /// returns `true` if the accessed bit was newly set.  Models the hardware
    /// walker's metadata updates (Sec. 4.4, "Metadata updates").
    pub fn mark_used(&mut self, page: u64, write: bool) -> Option<bool> {
        let node = self.leaf_node(page)?;
        let leaf_idx = Self::level_index(page, 1);
        match &mut self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => {
                let newly = pte.mark_accessed();
                if write {
                    pte.mark_dirty();
                }
                Some(newly)
            }
            _ => None,
        }
    }

    /// Performs a full 4-level walk for `page`, returning the address of the
    /// entry visited at every level (root first) and the leaf translation.
    /// Returns `None` if any level is missing.
    #[must_use]
    pub fn walk(&self, page: u64) -> Option<(Vec<EntryRef>, Pte)> {
        let mut refs = Vec::with_capacity(RADIX_LEVELS);
        let mut node = self.root;
        for level in (2..=RADIX_LEVELS as u8).rev() {
            let idx = Self::level_index(page, level);
            refs.push(EntryRef {
                level,
                entry_addr: self.nodes[node].slot_addr(idx),
            });
            match self.nodes[node].slots[idx] {
                Slot::Table(next) => node = next,
                _ => return None,
            }
        }
        let leaf_idx = Self::level_index(page, 1);
        refs.push(EntryRef {
            level: 1,
            entry_addr: self.nodes[node].slot_addr(leaf_idx),
        });
        match self.nodes[node].slots[leaf_idx] {
            Slot::Leaf(pte) if pte.is_present() => Some((refs, pte)),
            _ => None,
        }
    }

    fn leaf_node(&self, page: u64) -> Option<NodeIndex> {
        let mut node = self.root;
        for level in (2..=RADIX_LEVELS as u8).rev() {
            let idx = Self::level_index(page, level);
            match self.nodes[node].slots[idx] {
                Slot::Table(next) => node = next,
                _ => return None,
            }
        }
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut table = RadixTable::new(0x100);
        table.map(0xdead, 0xbeef);
        assert_eq!(table.translate(0xdead).unwrap().frame, 0xbeef);
        assert_eq!(table.translate(0xdeae), None);
        assert_eq!(table.mapped_pages(), 1);
    }

    #[test]
    fn mapped_keys_are_complete_and_ascending() {
        let mut table = RadixTable::new(0x100);
        // Spread keys across distinct leaf nodes and levels, inserted out
        // of order.
        let keys = [1u64 << 30, 7, 0xdead, 512, 42, (1 << 30) + 3];
        for &k in &keys {
            table.map(k, k + 1);
        }
        table.unmap(42);
        let mut expected: Vec<u64> = keys.iter().copied().filter(|&k| k != 42).collect();
        expected.sort_unstable();
        assert_eq!(table.mapped_keys(), expected);
        assert_eq!(table.mapped_keys().len() as u64, table.mapped_pages());
    }

    #[test]
    fn map_allocates_three_interior_nodes_first_time() {
        let mut table = RadixTable::new(0x100);
        let outcome = table.map(42, 7);
        // Levels 3, 2, 1 must be allocated beneath the pre-existing root.
        assert_eq!(outcome.allocated_nodes.len(), 3);
        assert_eq!(table.node_count(), 4);
        // A second page in the same 2 MiB region reuses all nodes.
        let outcome2 = table.map(43, 8);
        assert!(outcome2.allocated_nodes.is_empty());
    }

    #[test]
    fn remap_preserves_entry_address() {
        let mut table = RadixTable::new(0x100);
        table.map(99, 1);
        let addr_before = table.leaf_entry_addr(99).unwrap();
        let addr_reported = table.remap(99, 2).unwrap();
        assert_eq!(addr_before, addr_reported);
        assert_eq!(table.translate(99).unwrap().frame, 2);
    }

    #[test]
    fn unmap_removes_mapping() {
        let mut table = RadixTable::new(0x100);
        table.map(5, 6);
        assert!(table.unmap(5).is_some());
        assert_eq!(table.translate(5), None);
        assert_eq!(table.mapped_pages(), 0);
        assert!(table.unmap(5).is_none());
    }

    #[test]
    fn walk_returns_four_levels() {
        let mut table = RadixTable::new(0x100);
        table.map(0x12345, 0x777);
        let (refs, pte) = table.walk(0x12345).unwrap();
        assert_eq!(refs.len(), 4);
        assert_eq!(pte.frame, 0x777);
        assert_eq!(refs[0].level, 4);
        assert_eq!(refs[3].level, 1);
        // Entry addresses must fall inside their node's page.
        for r in &refs {
            assert_eq!(r.entry_addr % PTE_BYTES, 0);
        }
    }

    #[test]
    fn walk_of_unmapped_page_is_none() {
        let table = RadixTable::new(0x100);
        assert!(table.walk(1).is_none());
    }

    #[test]
    fn distinct_pages_have_distinct_leaf_entries() {
        let mut table = RadixTable::new(0x100);
        table.map(1, 10);
        table.map(2, 20);
        assert_ne!(table.leaf_entry_addr(1), table.leaf_entry_addr(2));
    }

    #[test]
    fn pages_in_same_line_share_cache_line() {
        let mut table = RadixTable::new(0x100);
        table.map(0, 10);
        table.map(7, 20);
        table.map(8, 30);
        let a = table.leaf_entry_addr(0).unwrap();
        let b = table.leaf_entry_addr(7).unwrap();
        let c = table.leaf_entry_addr(8).unwrap();
        assert_eq!(a / 64, b / 64, "ptes 0..8 share a 64B line");
        assert_ne!(a / 64, c / 64);
    }

    #[test]
    fn mark_used_sets_accessed_once() {
        let mut table = RadixTable::new(0x100);
        table.map(3, 4);
        assert_eq!(table.mark_used(3, false), Some(true));
        assert_eq!(table.mark_used(3, true), Some(false));
        assert!(table.translate(3).unwrap().flags.dirty);
        assert_eq!(table.mark_used(4, false), None);
    }

    #[test]
    fn many_mappings_scale() {
        let mut table = RadixTable::new(0x10000);
        for page in 0..10_000u64 {
            table.map(page, page + 1);
        }
        assert_eq!(table.mapped_pages(), 10_000);
        for page in (0..10_000u64).step_by(997) {
            assert_eq!(table.translate(page).unwrap().frame, page + 1);
        }
    }
}
