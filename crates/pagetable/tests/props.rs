//! Property-based tests for the radix page tables and the two-dimensional
//! walker.

use proptest::prelude::*;

use hatric_pagetable::{GuestPageTable, NestedPageTable, TwoDimWalker};
use hatric_types::{GuestFrame, GuestVirtPage, SystemFrame};

fn build(mappings: &[(u64, u64)]) -> (GuestPageTable, NestedPageTable) {
    let mut guest = GuestPageTable::new(GuestFrame::new(0x100_0000));
    let mut nested = NestedPageTable::new(SystemFrame::new(0x800_0000));
    for &(gvp, gpp) in mappings {
        guest.map(GuestVirtPage::new(gvp), GuestFrame::new(gpp));
        nested.map(GuestFrame::new(gpp), SystemFrame::new(gpp + 0x10_0000));
    }
    for node in guest.node_frames() {
        nested.map(node, SystemFrame::new(node.number() + 0x400_0000));
    }
    (guest, nested)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every mapped page translates back to exactly the frame it was mapped
    /// to, through both the tables and the full two-dimensional walk.
    #[test]
    fn walk_agrees_with_tables(pages in proptest::collection::btree_set(0u64..(1 << 27), 1..40)) {
        let mappings: Vec<(u64, u64)> =
            pages.iter().enumerate().map(|(i, &gvp)| (gvp, 0x1000 + i as u64)).collect();
        let (guest, nested) = build(&mappings);
        for &(gvp, gpp) in &mappings {
            let walk = TwoDimWalker::walk(GuestVirtPage::new(gvp), &guest, &nested).unwrap();
            prop_assert_eq!(walk.gpp, GuestFrame::new(gpp));
            prop_assert_eq!(walk.spp, SystemFrame::new(gpp + 0x10_0000));
            prop_assert_eq!(walk.memory_references(), 24);
            prop_assert_eq!(
                walk.nested_leaf_pte_addr(),
                nested.leaf_entry_addr(GuestFrame::new(gpp)).unwrap()
            );
        }
    }

    /// Remapping a page changes its translation but never moves the page
    /// table entry itself (co-tags stay valid across migrations).
    #[test]
    fn remap_preserves_pte_location(gvp in 0u64..(1 << 27), new_frame in 1u64..(1 << 20)) {
        let (guest, mut nested) = build(&[(gvp, 0x2222)]);
        let before = nested.leaf_entry_addr(GuestFrame::new(0x2222)).unwrap();
        let reported = nested.remap(GuestFrame::new(0x2222), SystemFrame::new(new_frame)).unwrap();
        prop_assert_eq!(before, reported);
        let walk = TwoDimWalker::walk(GuestVirtPage::new(gvp), &guest, &nested).unwrap();
        prop_assert_eq!(walk.spp, SystemFrame::new(new_frame));
    }

    /// Unmapped pages never translate, mapped pages always do (no aliasing
    /// between distinct guest-virtual pages).
    #[test]
    fn no_false_translations(pages in proptest::collection::btree_set(0u64..(1 << 20), 2..20)) {
        let pages: Vec<u64> = pages.into_iter().collect();
        let (mapped, unmapped) = pages.split_at(pages.len() / 2);
        let mappings: Vec<(u64, u64)> =
            mapped.iter().enumerate().map(|(i, &gvp)| (gvp, 0x5000 + i as u64)).collect();
        let (guest, _nested) = build(&mappings);
        for &(gvp, gpp) in &mappings {
            prop_assert_eq!(guest.translate(GuestVirtPage::new(gvp)), Some(GuestFrame::new(gpp)));
        }
        for &gvp in unmapped {
            prop_assert_eq!(guest.translate(GuestVirtPage::new(gvp)), None);
        }
    }
}
