//! A minimal wall-clock benchmark harness, API-compatible with the subset
//! of `criterion` 0.5 this workspace uses (see `stubs/README.md`).
//!
//! Each `bench_function` body is timed for real: the routine is warmed up,
//! then run in batches until a time budget is spent, and the harness prints
//! `group/name ... <ns>/iter over <n> iters`. There are no statistical
//! analyses, plots or baselines — just honest medians-of-batches, enough to
//! eyeball regressions and to drive the JSON emission in `hatric-bench`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement duration budget for one benchmark.
fn time_budget() -> Duration {
    std::env::var("CRITERION_STUB_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(300), Duration::from_millis)
}

/// How a batched routine's input size relates to the batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Result of one timed benchmark, exposed so callers can post-process
/// (the real criterion writes JSON to `target/criterion` instead).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier (`group/name`).
    pub id: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iterations: u64,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Times a single benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run_one(id, f);
    }

    /// All measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    fn run_one(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "bench: {:<56} {:>14.1} ns/iter ({} iters)",
            id, bencher.ns_per_iter, bencher.iterations
        );
        self.measurements.push(Measurement {
            id,
            ns_per_iter: bencher.ns_per_iter,
            iterations: bencher.iterations,
        });
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes iteration counts from
    /// the time budget instead of a fixed sample count.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(id, f);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the routine.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly until the time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup and per-call estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(20));
        let budget = time_budget();
        let iters = (budget.as_nanos() / estimate.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let total = start.elapsed();
        self.iterations = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let estimate = start.elapsed().max(Duration::from_nanos(20));
        let budget = time_budget();
        let iters = (budget.as_nanos() / estimate.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.iterations = iters;
        self.ns_per_iter = total.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("CRITERION_STUB_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(c.measurements().len(), 2);
        assert!(c.measurements().iter().all(|m| m.iterations >= 1));
    }
}
