//! Marker-trait facade for `serde` (offline stand-in).
//!
//! See `stubs/README.md`. The workspace derives `Serialize`/`Deserialize`
//! on its config and report types but never serializes, so the traits are
//! empty markers with blanket implementations and the derives are no-ops.

/// Marker for types that could be serialized.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that could be deserialized.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
