//! A minimal property-testing engine, API-compatible with the subset of
//! `proptest` 1.x this workspace uses (see `stubs/README.md`).
//!
//! Unlike the `serde` stand-in this crate is behaviourally real: the
//! `proptest!` macro expands each property into a `#[test]` that draws the
//! configured number of randomized cases from the given strategies using a
//! deterministic per-test RNG. What it does *not* implement is shrinking —
//! a failing case panics with the drawn values unminimized.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration of a property (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of randomized cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic xorshift64* RNG, seeded from the property's name so every
/// test run draws the same cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the RNG from an arbitrary string (the test's module path).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(h | 1)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `0..bound` (`bound` of 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of randomized values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as u64).wrapping_sub(*self.start() as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    (*self.start() as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Strategy producing any value of `T` (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A boxed draw function, the representation `prop_oneof!` arms lower to.
pub type DrawFn<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    choices: Vec<DrawFn<V>>,
}

impl<V> Union<V> {
    /// Builds a union from draw functions (used by `prop_oneof!`).
    #[must_use]
    pub fn new(choices: Vec<DrawFn<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        Self { choices }
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} choices)", self.choices.len())
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.choices.len() as u64) as usize;
        (self.choices[idx])(rng)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Draws `Vec`s of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Draws `BTreeSet`s of values from `element` with sizes in `size`
    /// (best-effort when the element domain is nearly exhausted).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.generate(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    /// Draws `BTreeMap`s with keys from `key`, values from `value` and sizes
    /// in `size` (best-effort when the key domain is nearly exhausted).
    pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.generate(rng);
            let mut map = BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 10 + 100 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }
}

// Re-exported so `proptest::collection::*` paths and the prelude both work.
pub use collection::{BTreeMapStrategy, BTreeSetStrategy, VecStrategy};

/// The `proptest!` macro: wraps property functions into `#[test]`s that run
/// `ProptestConfig::cases` randomized cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $($(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniformly chooses between strategy arms producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&($strat), rng)) as Box<dyn Fn(&mut $crate::TestRng) -> _>),+
        ])
    };
}

/// Everything a property test needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Map, ProptestConfig, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias module matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 1u8..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        #[test]
        fn maps_and_tuples_compose(v in (0u8..4, 0u64..100).prop_map(|(a, b)| (a as u64) * 1_000 + b)) {
            prop_assert!(v < 4_000);
        }

        #[test]
        fn collections_hit_their_sizes(
            xs in collection::vec(0u32..1_000, 1..20),
            set in collection::btree_set(0u64..1_000_000, 1..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(!set.is_empty());
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
