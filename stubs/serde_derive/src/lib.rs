//! No-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace only ever *derives* the serde traits (configs and reports
//! are `#[derive(Serialize, Deserialize)]` so downstream users could dump
//! them); no code path in the repository serializes anything. The stand-in
//! derives therefore expand to nothing — the marker traits in the `serde`
//! stub have blanket implementations.

use proc_macro::TokenStream;

/// Derives `serde::Serialize` (expands to nothing; the trait is blanket-implemented).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives `serde::Deserialize` (expands to nothing; the trait is blanket-implemented).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
