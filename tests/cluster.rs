//! The cluster tier's end-to-end contracts.
//!
//! Three invariants, per the cluster design:
//!
//! 1. **Byte-identical fleets** — a `ClusterReport` is byte-identical
//!    for any worker-thread count ({1, 2, 4}) and for both per-host
//!    slice-executor backends (`sliced` and `mp`).  All cross-host
//!    coupling is serialized at epoch boundaries, so the fleet's shape
//!    of parallelism must never leak into results.  The scenario layer
//!    gets the same treatment through the registry (reusing the
//!    `tests/common` timing-stripping helpers), which also covers the
//!    report-JSON path `bench_check` gates.
//! 2. **Fuzzed churn determinism** — a property test hammers the same
//!    invariant over randomized churn streams, migration counts,
//!    placement policies and fleet shapes.
//! 3. **Exact reconciliation** — cluster aggregates equal the field-wise
//!    sum (or concatenation) of the per-host reports; nothing is counted
//!    twice and nothing is dropped in the merge.

mod common;

use proptest::prelude::*;

use common::strip_timing;
use hatric_cluster::PlacementPolicy;
use hatric_host::experiments::ClusterChurnParams;
use hatric_host::scenario::{find, Params, Scale};
use hatric_host::{CoherenceMechanism, EngineKind};

/// A tighter sizing than [`ClusterChurnParams::quick`] for the sweeps
/// that run many fleets.
fn tiny() -> ClusterChurnParams {
    ClusterChurnParams {
        hosts: 3,
        num_pcpus: 2,
        fast_pages: 256,
        active_vms: 1,
        spare_slots: 1,
        vm_vcpus: 1,
        epoch_slices: 10,
        warmup_epochs: 4,
        measured_epochs: 10,
        slice_accesses: 20,
        churn_period: 4,
        copy_pages_per_slice: 32,
        ..ClusterChurnParams::quick()
    }
}

/// Runs a fleet and renders its report in full (`ClusterReport` carries
/// no wall-clock fields, so the Debug form is already timing-free).
fn fleet_fingerprint(params: &ClusterChurnParams, migrations: usize) -> String {
    let mut cluster = params.build_cluster(CoherenceMechanism::Hatric, migrations);
    let report = cluster.run(params.warmup_epochs, params.measured_epochs);
    format!("{report:#?}")
}

#[test]
fn cluster_report_is_byte_identical_across_threads_and_engines() {
    let reference = fleet_fingerprint(&tiny(), 2);
    for engine in [EngineKind::Sliced, EngineKind::MessagePassing] {
        for threads in [1usize, 2, 4] {
            let params = ClusterChurnParams {
                threads,
                engine,
                ..tiny()
            };
            let run = fleet_fingerprint(&params, 2);
            assert_eq!(
                run, reference,
                "fleet diverged at threads={threads} engine={engine}"
            );
        }
    }
}

/// The same invariant one layer up: the registered scenario's report JSON
/// (the artifact `bench_check` gates) must be byte-identical across the
/// worker-thread counts once wall-clock columns are stripped.  The
/// engine axis at this layer is swept by `tests/engine_conformance.rs`.
#[test]
fn cluster_churn_scenario_report_is_thread_invariant() {
    let scenario = find("cluster_churn").expect("cluster_churn is registered");
    let runs: Vec<String> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let report = scenario
                .run(&Params::new().with("threads", threads), Scale::Smoke)
                .unwrap_or_else(|err| panic!("threads={threads}: {err}"));
            strip_timing(&report.to_json())
        })
        .collect();
    assert_eq!(runs[1], runs[0], "threads=2 diverged from threads=1");
    assert_eq!(runs[2], runs[0], "threads=4 diverged from threads=1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized churn streams, fleet shapes, migration counts and
    /// placement policies never break thread-count invariance.
    #[test]
    fn fuzzed_fleets_are_thread_invariant(
        seed in any::<u64>(),
        hosts in 2usize..5,
        churn_period in 0u64..6,
        migrations in 0usize..3,
        affinity in any::<bool>(),
        threads in 2usize..5,
    ) {
        let params = ClusterChurnParams {
            seed,
            hosts,
            churn_period,
            policy: if affinity {
                PlacementPolicy::Affinity
            } else {
                PlacementPolicy::LeastLoaded
            },
            ..tiny()
        };
        let migrations = migrations.min(hosts);
        let reference = fleet_fingerprint(&params, migrations);
        let wide = fleet_fingerprint(
            &ClusterChurnParams { threads, ..params },
            migrations,
        );
        prop_assert_eq!(
            wide, reference,
            "threads={} diverged (seed={seed:#x} hosts={hosts} churn={churn_period} \
             migs={migrations} affinity={affinity})",
            threads
        );
    }
}

#[test]
fn cluster_aggregates_reconcile_exactly_with_per_host_reports() {
    let params = ClusterChurnParams::quick();
    let mut cluster = params.build_cluster(CoherenceMechanism::Software, 2);
    let report = cluster.run(params.warmup_epochs, params.measured_epochs);

    prop_assert_hosts(&report, params.hosts);

    // Scalar sums.
    let sum = |f: &dyn Fn(&hatric_host::HostReport) -> u64| -> u64 {
        report.per_host.iter().map(f).sum()
    };
    assert_eq!(report.aggregate.accesses, sum(&|h| h.host.accesses));
    assert_eq!(
        report.aggregate.coherence.remaps,
        sum(&|h| h.host.coherence.remaps)
    );
    assert_eq!(
        report.aggregate.coherence.ipis,
        sum(&|h| h.host.coherence.ipis)
    );
    assert_eq!(
        report.aggregate.coherence.coherence_vm_exits,
        sum(&|h| h.host.coherence.coherence_vm_exits)
    );
    assert_eq!(
        report.aggregate.interference.disrupted_cycles,
        sum(&|h| h.host.interference.disrupted_cycles)
    );
    assert_eq!(
        report.migration.pages_copied,
        sum(&|h| h.migration.pages_copied)
    );
    assert_eq!(
        report.migration.received_pages,
        sum(&|h| h.migration.received_pages)
    );
    assert_eq!(
        report.migration.migrations_started,
        sum(&|h| h.migration.migrations_started)
    );
    assert_eq!(
        report.migration.throttled_slices,
        sum(&|h| h.migration.throttled_slices)
    );
    assert_eq!(
        report.migration.migrations_aborted,
        sum(&|h| h.migration.migrations_aborted)
    );
    assert_eq!(
        report.migration.migrations_escalated,
        sum(&|h| h.migration.migrations_escalated)
    );
    assert_eq!(
        report.migration.pages_dropped,
        sum(&|h| h.migration.pages_dropped)
    );
    assert_eq!(
        report.migration.pages_discarded,
        sum(&|h| h.migration.pages_discarded)
    );
    assert_eq!(
        report.migration.stalled_slices,
        sum(&|h| h.migration.stalled_slices)
    );

    // The fleet's cycle vector is the per-host concatenation in host order.
    let concatenated: Vec<u64> = report
        .per_host
        .iter()
        .flat_map(|h| h.host.cycles_per_cpu.iter().copied())
        .collect();
    assert_eq!(report.aggregate.cycles_per_cpu, concatenated);

    // The migration ledger is internally consistent: every outcome names
    // real endpoints, the source handed pages to the destination, and the
    // completion count matches the hand-off flags.
    assert!(!report.migrations.is_empty(), "both migrations must appear");
    for outcome in &report.migrations {
        assert!(outcome.src_host < report.hosts());
        assert!(outcome.dst_host < report.hosts());
        assert_ne!(
            (outcome.src_host, outcome.src_slot),
            (outcome.dst_host, outcome.dst_slot),
            "a migration never lands on its own source slot"
        );
    }
    assert_eq!(
        report.completed_migrations(),
        report.migrations.iter().filter(|m| m.handed_off).count() as u64
    );
    assert!(report.peak_inflight >= 1);
    assert!(report.downtime_percentile(99) <= report.downtime_percentile(100));
}

fn prop_assert_hosts(report: &hatric_cluster::ClusterReport, hosts: usize) {
    assert_eq!(report.hosts(), hosts);
    assert_eq!(report.per_host.len(), hosts);
}

/// Mid-flight receiver abort reconciles page-exactly.  The source host is
/// crashed in the middle of a pre-copy against a deliberately *slow*
/// receiver (one page per slice), so the destination holds both a landed
/// partial image (rolled back, but still counted as received) and a
/// non-empty inbox backlog (discarded) at abort time.  Every page the
/// source ever copied must be accounted for:
///
/// ```text
/// pages_copied == received_pages + pages_dropped + pages_discarded
/// ```
///
/// Nothing in flight is lost — the epoch-boundary wiring drains the
/// source outbox every epoch, and the crash fires at a boundary.
#[test]
fn a_source_crash_mid_precopy_reconciles_pages_exactly() {
    use hatric_cluster::{
        Cluster, ClusterParams, FaultEvent, FaultKind, MigrationMode, ScheduledMigration,
    };
    use hatric_host::{ConsolidatedHost, MigrationParams};
    use hatric_migration::ReceiverParams;

    let base = ClusterChurnParams::quick();
    let fleet: Vec<ConsolidatedHost> = (0..2)
        .map(|h| {
            ConsolidatedHost::new(base.host_config(h, CoherenceMechanism::Hatric))
                .expect("quick configs are valid")
        })
        .collect();
    let mut params = ClusterParams::new(base.epoch_slices, 1);
    params.migration = MigrationParams {
        copy_pages_per_slice: 2,
        ..MigrationParams::at(0, 0)
    };
    params.receiver = ReceiverParams {
        pages_per_slice: 1,
        ..ReceiverParams::for_slot(0)
    };
    let mut cluster = Cluster::new(fleet, params);
    for host in 0..2 {
        for slot in base.active_vms..base.vm_slots() {
            cluster.set_vm_active(host, slot, false);
        }
    }
    cluster.schedule_migration(ScheduledMigration {
        epoch: 2,
        src_host: 0,
        src_slot: 0,
        dst_host: Some(1),
        mode: MigrationMode::PreCopy,
    });
    cluster
        .set_faults(vec![FaultEvent {
            epoch: 5,
            kind: FaultKind::HostCrash { host: 0 },
        }])
        .expect("the crash targets an in-range host");
    let report = cluster.run(2, 10);

    assert_eq!(report.recovery.host_crashes, 1);
    assert_eq!(report.recovery.migrations_aborted, 1);
    assert_eq!(report.migrations.len(), 1, "exactly one migration ran");
    let outcome = &report.migrations[0];
    assert!(outcome.aborted, "the crash must abort the migration");
    assert!(
        !outcome.handed_off,
        "three epochs of pre-copy at two pages a slice cannot move the \
         whole image, so the VM never flipped"
    );

    // The slow receiver guarantees both sides of the ledger are non-zero:
    // some pages landed (and survive the rollback *as counters*), some
    // were still queued and were discarded.
    assert!(report.migration.received_pages > 0, "some pages landed");
    assert!(
        report.migration.pages_discarded > 0,
        "the inbox backlog at abort time must be non-empty"
    );
    assert_eq!(
        report.migration.pages_copied,
        report.migration.received_pages
            + report.migration.pages_dropped
            + report.migration.pages_discarded,
        "every copied page must be landed, dropped or discarded"
    );
    // All destination-side counters live on host 1, source-side on host 0.
    assert_eq!(
        report.per_host[1].migration.pages_discarded,
        report.migration.pages_discarded
    );
    assert_eq!(
        report.per_host[0].migration.migrations_aborted, 1,
        "the source engine records its own abort"
    );
}
