//! The fault layer's end-to-end contracts.
//!
//! Three invariants, per the robustness design:
//!
//! 1. **Deterministic storms** — the `cluster_faults` storm (host crash
//!    mid-migration, bounded retry, forced post-copy escalation, seeded
//!    background link/DRAM faults) produces a byte-identical
//!    `ClusterReport` across worker-thread counts {1, 2, 4} and both
//!    slice-executor backends, at the committed Bench scale.  Faults
//!    fire from sim-time, never wall-clock, so the fleet's shape of
//!    parallelism must never leak into a faulted run.
//! 2. **Abort rolls back to pristine** — a migration that stalls from its
//!    first slice and is then aborted leaves the source host byte-
//!    identical to one that never started it, modulo the migration
//!    ledger's own bookkeeping of the failed attempt.
//! 3. **Fuzzed fault plans** — a property test hammers `FaultPlan` over
//!    random seeds, weights and rates (schedules are deterministic,
//!    epoch-ordered and in-range) and replays random storms over fleets
//!    of randomized hosts (`RandomHostSpec`) to check thread invariance
//!    under faults.

mod common;

use proptest::prelude::*;

use common::RandomHostSpec;
use hatric_cluster::{
    Cluster, ClusterParams, EpochHost, FaultClock, FaultKind, FaultPlan, FaultWeights,
    MigrationMode, ScheduledMigration,
};
use hatric_host::experiments::{ClusterChurnParams, ClusterFaultsParams};
use hatric_host::{CoherenceMechanism, ConsolidatedHost, EngineKind, MigrationParams};
use hatric_migration::ReceiverParams;

/// Runs the engineered fault storm and renders the fleet report in full
/// (`ClusterReport` carries no wall-clock fields, so the Debug form is
/// already timing-free).
fn storm_fingerprint(params: &ClusterFaultsParams) -> String {
    let mut cluster = params.build_cluster(CoherenceMechanism::Hatric);
    let report = cluster.run(params.base.warmup_epochs, params.base.measured_epochs);
    format!("{report:#?}")
}

/// The acceptance contract: at the committed Bench scale, with the fixed
/// fault seed, the storm injects at least one host crash and two
/// migration aborts, and the `ClusterReport` is byte-identical across
/// worker-thread counts {1, 2, 4} and both engine backends.
#[test]
fn bench_scale_fault_storm_is_byte_identical_across_threads_and_engines() {
    let base = ClusterFaultsParams::default_scale();
    let mut reference_cluster = base.build_cluster(CoherenceMechanism::Hatric);
    let reference_report =
        reference_cluster.run(base.base.warmup_epochs, base.base.measured_epochs);
    assert!(
        reference_report.recovery.host_crashes >= 1,
        "the fixed fault seed must inject at least one host crash"
    );
    assert!(
        reference_report.recovery.migrations_aborted >= 2,
        "the fixed fault seed must abort at least two migrations (got {})",
        reference_report.recovery.migrations_aborted
    );
    let reference = format!("{reference_report:#?}");
    for engine in [EngineKind::Sliced, EngineKind::MessagePassing] {
        for threads in [1usize, 2, 4] {
            if engine == base.base.engine && threads == base.base.threads {
                continue; // that is the reference run itself
            }
            let mut params = base;
            params.base.threads = threads;
            params.base.engine = engine;
            assert_eq!(
                storm_fingerprint(&params),
                reference,
                "faulted fleet diverged at threads={threads} engine={engine}"
            );
        }
    }
}

/// Abort/rollback reconciliation at the host layer: a migration whose
/// engine is stalled from the very first slice copies nothing and
/// write-protects nothing, so aborting it must leave the source host
/// byte-identical to a host that never started the migration — the only
/// permitted difference is the migration ledger recording the failed
/// attempt itself.
#[test]
fn a_stalled_then_aborted_migration_leaves_the_source_pristine() {
    let base = ClusterChurnParams::quick();
    let config = base.host_config(0, CoherenceMechanism::Hatric);
    let mut faulted = ConsolidatedHost::new(config.clone()).expect("quick configs are valid");
    let mut pristine = ConsolidatedHost::new(config).expect("quick configs are valid");

    faulted.start_migration(MigrationParams::at(0, 0));
    faulted.set_migration_stalled(true);
    for _ in 0..4 {
        faulted.run_slices(10);
        pristine.run_slices(10);
    }
    let discarded = faulted.abort_migration();
    assert_eq!(discarded, 0, "a stalled engine never filled its outbox");
    for _ in 0..4 {
        faulted.run_slices(10);
        pristine.run_slices(10);
    }

    let mut after_abort = faulted.report();
    let mut never_started = pristine.report();
    assert_eq!(after_abort.migration.migrations_started, 1);
    assert_eq!(after_abort.migration.migrations_aborted, 1);
    assert_eq!(after_abort.migration.migrations_completed, 0);
    assert_eq!(after_abort.migration.pages_copied, 0);
    assert!(
        after_abort.migration.stalled_slices > 0,
        "the stall window must be accounted"
    );
    after_abort.migration = Default::default();
    never_started.migration = Default::default();
    assert_eq!(
        format!("{after_abort:#?}"),
        format!("{never_started:#?}"),
        "an aborted stalled migration must leave no trace outside the \
         migration ledger"
    );
}

/// A small randomized host for the fuzzed-fleet draw: shape varies with
/// the seed but stays cheap enough to run dozens of fleets.
fn random_host(seed: u64, ordinal: usize) -> ConsolidatedHost {
    let spec = RandomHostSpec {
        pcpus_per_socket: 2,
        sockets: 1,
        // Three slots so a deactivated spare leaves migration headroom.
        vm_vcpus: vec![1 + (seed % 2) as usize, 1, 1],
        mechanism_pick: (seed >> 8) as u8,
        sched_pick: (seed >> 16) as u8,
        policy_pick: (seed >> 24) as u8,
        slice_accesses: 15 + (seed >> 32) % 10,
        with_balloon: false,
        with_migration: false,
        threads: 1,
        engine: EngineKind::Sliced,
        tracing: false,
        timeline: false,
        seed: seed ^ (0x5eed * (ordinal as u64 + 1)),
    };
    ConsolidatedHost::new(spec.config()).expect("drawn configurations are valid")
}

/// Builds a small fleet of randomized hosts with a seeded fault plan and
/// one scheduled migration, runs it, and returns the report fingerprint.
fn fuzzed_storm_fingerprint(
    seed: u64,
    fault_seed: u64,
    period: u64,
    hosts: usize,
    threads: usize,
) -> String {
    let fleet: Vec<ConsolidatedHost> = (0..hosts).map(|h| random_host(seed, h)).collect();
    let mut params = ClusterParams::new(8, threads);
    params.migration = MigrationParams {
        copy_pages_per_slice: 4,
        ..MigrationParams::at(0, 0)
    };
    params.receiver = ReceiverParams::for_slot(0);
    params.stall_timeout_epochs = 4;
    params.max_retries = 1;
    params.retry_backoff_epochs = 1;
    let mut cluster = Cluster::new(fleet, params);
    for host in 0..hosts {
        cluster.set_vm_active(host, 2, false); // migration headroom
    }
    cluster.schedule_migration(ScheduledMigration {
        epoch: 2,
        src_host: 0,
        src_slot: 0,
        dst_host: None,
        mode: MigrationMode::PreCopy,
    });
    let plan = FaultPlan::new(fault_seed, hosts, period);
    cluster
        .set_faults(plan.generate(16).expect("generated plans are valid"))
        .expect("generated plans target in-range hosts");
    let report = cluster.run(4, 12);
    format!("{report:#?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `FaultPlan` schedules are a pure function of their seed, sorted by
    /// epoch, and every event targets an in-range host with a positive
    /// window — so [`FaultClock::for_fleet`] always accepts them.
    #[test]
    fn fault_plans_are_deterministic_ordered_and_in_range(
        seed in any::<u64>(),
        hosts in 1usize..6,
        period in 1u64..12,
        epochs in 1u64..80,
        crash in 0u64..4,
        link in 0u64..4,
        brownout in 0u64..4,
        stall in 0u64..4,
    ) {
        let plan = FaultPlan {
            weights: FaultWeights { crash, link, brownout, stall },
            ..FaultPlan::new(seed, hosts, period)
        };
        let a = plan.generate(epochs).expect("weighted plans are valid");
        let b = plan.generate(epochs).expect("weighted plans are valid");
        prop_assert_eq!(&a, &b, "the schedule must be a pure function of the seed");
        for pair in a.windows(2) {
            prop_assert!(pair[0].epoch <= pair[1].epoch, "events must be epoch-ordered");
        }
        for event in &a {
            prop_assert!(event.epoch < epochs);
            let (host, window) = match event.kind {
                FaultKind::HostCrash { host } => (host, 1),
                FaultKind::LinkDegrade { host, factor, epochs } => {
                    prop_assert!(factor >= 2, "a degraded link divides by at least 2");
                    (host, epochs)
                }
                FaultKind::LinkBlackout { host, epochs } => (host, epochs),
                FaultKind::DramBrownout { host, multiplier_x100, epochs } => {
                    prop_assert!(multiplier_x100 > 100, "a brownout must slow the device");
                    (host, epochs)
                }
                FaultKind::StuckPreCopy { host, epochs } => (host, epochs),
            };
            prop_assert!(host < hosts, "events must target in-range hosts");
            prop_assert!(window >= 1, "fault windows must be positive");
        }
        prop_assert!(FaultClock::for_fleet(a, hosts).is_ok());
    }

    /// Random fault storms over fleets of randomized hosts never break
    /// worker-thread invariance: crashes, link faults, brownouts and
    /// stalls all key off sim-time epochs.
    #[test]
    fn fuzzed_fault_storms_on_random_hosts_are_thread_invariant(
        seed in any::<u64>(),
        fault_seed in 1u64..1_000_000,
        period in 1u64..6,
        hosts in 2usize..4,
        threads in 2usize..5,
    ) {
        let reference = fuzzed_storm_fingerprint(seed, fault_seed, period, hosts, 1);
        let wide = fuzzed_storm_fingerprint(seed, fault_seed, period, hosts, threads);
        prop_assert_eq!(
            wide, reference,
            "threads={} diverged under faults (seed={:#x} fault_seed={} period={} hosts={})",
            threads, seed, fault_seed, period, hosts
        );
    }
}
