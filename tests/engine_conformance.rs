//! The two-engine conformance contract: the message-passing slice
//! executor (`engine=mp`) must produce **byte-identical** results to the
//! phased slice executor (`engine=sliced`) — on every registered
//! scenario, at every worker thread count, and across a fuzzed space of
//! host configurations.
//!
//! The engines share unit simulation and the commit helpers by
//! construction (`crate::engine_mp` routes the same effect payloads
//! through the same `route_effect`/`replay_banks`/`serial_pass` code the
//! phased engine uses), so any divergence this harness can observe is an
//! orchestration-order bug — exactly what the delayed-queue delivery key
//! is meant to pin down.

mod common;

use proptest::prelude::*;

use common::{divergence_summary, sorted_row_keys, strip_timing, RandomHostSpec};
use hatric_host::scenario::{registry, Params, Scale, Scenario};
use hatric_host::EngineKind;

/// Runs `scenario` at `Scale::Smoke` with the given overrides and returns
/// its report JSON with the wall-clock columns stripped.
fn stripped_run(scenario: &dyn Scenario, params: &Params) -> String {
    let report = scenario
        .run(params, Scale::Smoke)
        .unwrap_or_else(|err| panic!("{}: {err}", scenario.name()));
    strip_timing(&report.to_json())
}

#[test]
fn every_engine_scenario_is_byte_identical_under_both_backends() {
    let mut swept = 0;
    for scenario in registry() {
        let defaults = scenario.default_params(Scale::Smoke);
        if defaults.get("engine").is_none() {
            // Single-VM figure scenarios and host_scale take no engine
            // knob (host_scale runs both engines internally; see below).
            continue;
        }
        swept += 1;
        let threads_points: &[usize] = if defaults.get("threads").is_some() {
            &[1, 2, 4]
        } else {
            &[1]
        };
        for &threads in threads_points {
            let with = |engine: &str| {
                let mut params = Params::new().with("engine", engine);
                if defaults.get("threads").is_some() {
                    params = params.with("threads", threads);
                }
                stripped_run(*scenario, &params)
            };
            let sliced = with("sliced");
            let mp = with("mp");
            assert!(
                !sliced.is_empty(),
                "{}: stripped report must not be empty",
                scenario.name()
            );
            assert_eq!(
                sliced,
                mp,
                "{} threads={threads}: engine=mp diverged from engine=sliced",
                scenario.name()
            );
        }
    }
    assert!(
        swept >= 3,
        "the multivm, migration_storm and numa_contention scenarios all take \
         the engine knob; only {swept} scenarios swept"
    );
}

#[test]
fn host_scale_rows_carry_side_by_side_per_engine_timings() {
    // host_scale has no engine parameter: its sweep runs every point under
    // both backends, asserts the reports equal internally, and lands the
    // message-passing wall clock in its own (ungated) columns.
    let scenario = hatric_host::scenario::find("host_scale").expect("host_scale is registered");
    let report = scenario.run(&Params::new(), Scale::Smoke).unwrap();
    assert!(!report.rows.is_empty());
    for row in &report.rows {
        for key in [
            "elapsed_ms",
            "accesses_per_sec",
            "mp_elapsed_ms",
            "mp_accesses_per_sec",
        ] {
            let value = row
                .number(key)
                .unwrap_or_else(|| panic!("{}: row must carry {key}", row.label()));
            assert!(value > 0.0, "{}: {key} must be positive", row.label());
        }
    }
}

#[test]
fn engine_override_reaches_the_run_and_bad_values_are_typed_errors() {
    let scenario = hatric_host::scenario::find("multivm").expect("multivm is registered");
    // `--set engine=mp` flows through the generic override path; the row
    // set must be identical to the default engine's.
    let sliced = scenario.run(&Params::new(), Scale::Smoke).unwrap();
    let mp = scenario
        .run(&Params::new().with("engine", "mp"), Scale::Smoke)
        .unwrap();
    assert_eq!(sorted_row_keys(&sliced), sorted_row_keys(&mp));
    let err = scenario
        .run(&Params::new().with("engine", "warp"), Scale::Smoke)
        .unwrap_err();
    assert_eq!(
        err,
        hatric_types::ConfigError::BadValue {
            key: "engine".into(),
            value: "warp".into()
        }
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid host produces byte-identical reports under both engine
    /// backends, for any thread count and with every observability knob
    /// in the draw space (sockets, schedulers, mechanisms, balloons,
    /// in-flight migrations, tracing, counter timelines).
    #[test]
    fn random_hosts_are_engine_invariant(
        pcpus_per_socket in 1usize..4,
        sockets_pick in 0u8..2,
        vm_vcpus in proptest::collection::vec(1usize..4, 1..5),
        mechanism_pick in 0u8..4,
        sched_pick in 0u8..3,
        policy_pick in 0u8..2,
        slice_accesses in 5u64..25,
        with_balloon in 0u8..2,
        with_migration in 0u8..2,
        tracing in 0u8..2,
        timeline in 0u8..2,
        threads_pick in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let spec = RandomHostSpec {
            pcpus_per_socket,
            sockets: usize::from(sockets_pick) + 1,
            vm_vcpus,
            mechanism_pick,
            sched_pick,
            policy_pick,
            slice_accesses,
            with_balloon: with_balloon == 1,
            with_migration: with_migration == 1,
            threads: 1 << threads_pick,
            engine: EngineKind::Sliced,
            tracing: tracing == 1,
            timeline: timeline == 1,
            seed,
        };
        prop_assert!(spec.config().validate().is_ok());
        let sliced = spec.run();
        let mp = spec.clone().with_engine(EngineKind::MessagePassing).run();
        if let Some(diff) = divergence_summary(&sliced, &mp) {
            prop_assert!(false, "engine=mp diverged from engine=sliced ({} threads):\n{diff}", spec.threads);
        }
    }
}
