//! End-to-end tests of the consolidated-host subsystem: report consistency
//! between per-VM and host-level views, and the central interference claim
//! (software shootdowns disturb remap-free victims, HATRIC does not).

use hatric_host::{
    CoherenceMechanism, ConsolidatedHost, HostConfig, HostReport, SchedPolicy, VmSpec,
};

fn four_vm_host(mechanism: CoherenceMechanism, sched: SchedPolicy) -> ConsolidatedHost {
    // 8 vCPUs over 4 pCPUs: VMs genuinely time-share CPUs, so shootdown
    // IPIs land on innocent bystanders.
    let cfg = HostConfig::scaled(4, 512)
        .with_mechanism(mechanism)
        .with_sched(sched)
        .with_seed(0xc0_ffee)
        .with_vm(VmSpec::aggressor(2, 256))
        .with_vm(VmSpec::victim(2, 96))
        .with_vm(VmSpec::victim(2, 96))
        .with_vm(VmSpec::victim(2, 64));
    ConsolidatedHost::new(cfg).unwrap()
}

fn run(mechanism: CoherenceMechanism, sched: SchedPolicy) -> HostReport {
    four_vm_host(mechanism, sched).run(300, 400)
}

#[test]
fn per_vm_reports_sum_to_host_totals() {
    for mechanism in [CoherenceMechanism::Software, CoherenceMechanism::Hatric] {
        let report = run(mechanism, SchedPolicy::RoundRobin);
        assert_eq!(report.per_vm.len(), 4);
        let sum = |f: &dyn Fn(&hatric_host::SimReport) -> u64| -> u64 {
            report.per_vm.iter().map(f).sum()
        };
        assert_eq!(report.host.accesses, sum(&|r| r.accesses));
        assert_eq!(report.host.coherence.remaps, sum(&|r| r.coherence.remaps));
        assert_eq!(report.host.coherence.ipis, sum(&|r| r.coherence.ipis));
        assert_eq!(
            report.host.coherence.coherence_vm_exits,
            sum(&|r| r.coherence.coherence_vm_exits)
        );
        assert_eq!(
            report.host.faults.demand_faults,
            sum(&|r| r.faults.demand_faults)
        );
        assert_eq!(
            report.host.interference.disrupted_cycles,
            sum(&|r| r.interference.disrupted_cycles)
        );
        // Every cycle attributed to a vCPU was consumed on some pCPU.
        let vcpu_total: u64 = sum(&|r| r.cycles_per_cpu.iter().sum());
        let pcpu_total: u64 = report.host.cycles_per_cpu.iter().sum();
        assert!(
            vcpu_total <= pcpu_total,
            "vCPU cycles {vcpu_total} cannot exceed pCPU cycles {pcpu_total}"
        );
    }
}

#[test]
fn host_paging_aggregate_equals_explicit_per_vm_sums() {
    // Guards `PagingStats::merge` completeness (and, transitively, the
    // PR-1 warmup-reset fix): every field of the host-level paging
    // aggregate must equal the explicitly-summed per-VM counters.  A field
    // added to `PagingStats` but forgotten in `merge` diverges here.
    let report = run(CoherenceMechanism::Software, SchedPolicy::RoundRobin);
    let sum =
        |f: &dyn Fn(&hatric_host::SimReport) -> u64| -> u64 { report.per_vm.iter().map(f).sum() };
    let host = &report.host.paging;
    assert_eq!(
        host.demand_faults.get(),
        sum(&|r| r.paging.demand_faults.get())
    );
    assert_eq!(host.promotions.get(), sum(&|r| r.paging.promotions.get()));
    assert_eq!(host.evictions.get(), sum(&|r| r.paging.evictions.get()));
    assert_eq!(host.prefetches.get(), sum(&|r| r.paging.prefetches.get()));
    assert_eq!(host.daemon_runs.get(), sum(&|r| r.paging.daemon_runs.get()));
    assert_eq!(
        host.balloon_reclaimed.get(),
        sum(&|r| r.paging.balloon_reclaimed.get())
    );
    assert_eq!(
        host.balloon_granted.get(),
        sum(&|r| r.paging.balloon_granted.get())
    );
    assert!(host.demand_faults.get() > 0, "the aggressor must page");
    // The two independent demand-fault counters (pipeline-side
    // FaultActivity vs policy-side PagingStats) must agree — they drift
    // if warmup resets ever diverge again.
    assert_eq!(report.host.faults.demand_faults, host.demand_faults.get());
}

#[test]
fn victims_record_zero_coherence_cycles_under_hatric_but_not_shootdown() {
    let software = run(CoherenceMechanism::Software, SchedPolicy::RoundRobin);
    let hatric = run(CoherenceMechanism::Hatric, SchedPolicy::RoundRobin);

    // The aggressor pages in both runs; the victims never do.
    assert!(software.per_vm[0].coherence.remaps > 0);
    assert!(hatric.per_vm[0].coherence.remaps > 0);
    for victim in 1..4 {
        assert_eq!(software.per_vm[victim].coherence.remaps, 0);
        assert_eq!(hatric.per_vm[victim].coherence.remaps, 0);
        // Under HATRIC a remap-free victim records zero coherence-induced
        // cycles; under software shootdowns it is collateral damage.
        assert_eq!(hatric.per_vm[victim].interference.disrupted_cycles, 0);
    }
    let software_victim_damage: u64 = software.per_vm[1..]
        .iter()
        .map(|r| r.interference.disrupted_cycles)
        .sum();
    assert!(
        software_victim_damage > 0,
        "software shootdowns must steal victim cycles on a shared host"
    );
    // The damage is visible in the host-level metric too.
    assert!(software.total_disrupted_cycles() >= software_victim_damage);
    assert!(software.interference_fraction() > 0.0);
    assert_eq!(hatric.interference_fraction(), 0.0);
}

#[test]
fn pinned_scheduling_confines_shootdowns_to_fewer_cpus() {
    // With static pinning the aggressor's cpus-ever-used set stays minimal,
    // so software shootdowns send fewer IPIs per remap than under
    // round-robin migration (where the set grows to every CPU).
    let pinned = run(CoherenceMechanism::Software, SchedPolicy::Pinned);
    let rr = run(CoherenceMechanism::Software, SchedPolicy::RoundRobin);
    let ipis_per_remap =
        |r: &HostReport| r.host.coherence.ipis as f64 / r.host.coherence.remaps.max(1) as f64;
    assert!(pinned.host.coherence.remaps > 0);
    assert!(rr.host.coherence.remaps > 0);
    assert!(
        ipis_per_remap(&pinned) < ipis_per_remap(&rr),
        "pinned {} vs round-robin {}",
        ipis_per_remap(&pinned),
        ipis_per_remap(&rr)
    );
}

#[test]
fn hatric_victims_stay_near_the_ideal_bound() {
    let hatric = run(CoherenceMechanism::Hatric, SchedPolicy::RoundRobin);
    let ideal = run(CoherenceMechanism::Ideal, SchedPolicy::RoundRobin);
    for victim in 1..4 {
        let slowdown = hatric.vm_slowdown_vs(&ideal, victim);
        assert!(
            slowdown < 1.05,
            "victim {victim} slowdown {slowdown} exceeds 5% of ideal"
        );
    }
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let a = run(CoherenceMechanism::Software, SchedPolicy::RoundRobin);
    let b = run(CoherenceMechanism::Software, SchedPolicy::RoundRobin);
    assert_eq!(a, b);
}
