//! Cross-crate integration tests: drive the full simulator end-to-end and
//! check that the substrate crates compose correctly.

use hatric::{CoherenceMechanism, MemoryMode, PagingKnobs, System, SystemConfig, WorkloadDriver};
use hatric_workloads::{MixWorkload, SpecMix, Workload, WorkloadKind};

fn small_config(mechanism: CoherenceMechanism) -> SystemConfig {
    SystemConfig::scaled(4, 256).with_mechanism(mechanism)
}

fn run_workload(kind: WorkloadKind, mechanism: CoherenceMechanism) -> hatric::SimReport {
    let config = small_config(mechanism);
    let mut system = System::new(config.clone()).unwrap();
    let wl = Workload::build(kind, config.vcpus, config.fast_capacity_pages(), 11);
    let mut driver = WorkloadDriver::from(wl);
    system.run(&mut driver, 1_500, 2_000)
}

#[test]
fn every_big_memory_workload_runs_under_every_mechanism() {
    for kind in WorkloadKind::big_memory_suite() {
        for mechanism in [
            CoherenceMechanism::Software,
            CoherenceMechanism::Hatric,
            CoherenceMechanism::UnitdPlusPlus,
            CoherenceMechanism::Ideal,
        ] {
            let report = run_workload(kind, mechanism);
            assert!(report.runtime_cycles() > 0, "{kind:?} under {mechanism:?}");
            assert_eq!(report.accesses, 4 * 2_000);
        }
    }
}

#[test]
fn hardware_coherence_never_takes_vm_exits_or_flushes() {
    for mechanism in [CoherenceMechanism::Hatric, CoherenceMechanism::Ideal] {
        let report = run_workload(WorkloadKind::Tunkrank, mechanism);
        assert_eq!(report.coherence.coherence_vm_exits, 0);
        assert_eq!(report.coherence.ipis, 0);
        assert_eq!(report.coherence.full_flushes, 0);
    }
}

#[test]
fn software_coherence_takes_vm_exits_and_flushes() {
    let report = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::Software);
    assert!(report.coherence.remaps > 0);
    assert!(report.coherence.ipis > 0);
    assert!(report.coherence.full_flushes > 0);
    assert!(report.coherence.entries_flushed > 0);
}

#[test]
fn mechanism_ordering_matches_the_paper() {
    // ideal <= hatric < software for a paging-heavy workload.
    let sw = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::Software);
    let unitd = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::UnitdPlusPlus);
    let hatric = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::Hatric);
    let ideal = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::Ideal);
    assert!(hatric.runtime_cycles() < sw.runtime_cycles());
    assert!(unitd.runtime_cycles() < sw.runtime_cycles());
    assert!(ideal.runtime_cycles() <= hatric.runtime_cycles() * 102 / 100);
    // UNITD++ still flushes MMU caches and nTLBs, so it cannot beat HATRIC.
    assert!(hatric.runtime_cycles() <= unitd.runtime_cycles() * 102 / 100);
}

#[test]
fn selective_invalidation_happens_with_hatric() {
    let report = run_workload(WorkloadKind::DataCaching, CoherenceMechanism::Hatric);
    assert!(report.coherence.remaps > 0);
    assert!(report.coherence.hw_messages > 0);
    assert!(
        report.coherence.entries_selectively_invalidated > 0,
        "co-tag matches should invalidate stale translations"
    );
}

#[test]
fn paging_policies_all_work_end_to_end() {
    for knobs in PagingKnobs::fig8_sweep() {
        let config = small_config(CoherenceMechanism::Hatric).with_paging(knobs);
        let mut system = System::new(config.clone()).unwrap();
        let wl = Workload::build(WorkloadKind::Canneal, 4, config.fast_capacity_pages(), 5);
        let mut driver = WorkloadDriver::from(wl);
        let report = system.run(&mut driver, 1_000, 1_000);
        assert!(report.faults.pages_promoted > 0);
    }
}

#[test]
fn memory_modes_behave_sanely() {
    let paged = run_workload(WorkloadKind::Graph500, CoherenceMechanism::Software);
    let config = small_config(CoherenceMechanism::Software).with_memory_mode(MemoryMode::NoHbm);
    let mut system = System::new(config.clone()).unwrap();
    let wl = Workload::build(WorkloadKind::Graph500, 4, config.fast_capacity_pages(), 11);
    let mut driver = WorkloadDriver::from(wl);
    let no_hbm = system.run(&mut driver, 1_500, 2_000);
    assert_eq!(no_hbm.coherence.remaps, 0);
    assert!(paged.coherence.remaps > 0);
}

#[test]
fn multiprogrammed_mixes_run_with_distinct_address_spaces() {
    let mix = SpecMix::generate(1, 99).remove(0);
    let config = SystemConfig::scaled(16, 256).with_mechanism(CoherenceMechanism::Hatric);
    let mut system = System::new(config).unwrap();
    let wl = MixWorkload::build(mix, 256, 3);
    let mut driver = WorkloadDriver::from(wl);
    let report = system.run(&mut driver, 300, 500);
    assert_eq!(report.cycles_per_cpu.len(), 16);
    assert!(report.cycles_per_cpu.iter().all(|&c| c > 0));
}

#[test]
fn reports_are_deterministic_for_a_fixed_seed() {
    let a = run_workload(WorkloadKind::Facesim, CoherenceMechanism::Hatric);
    let b = run_workload(WorkloadKind::Facesim, CoherenceMechanism::Hatric);
    assert_eq!(a.runtime_cycles(), b.runtime_cycles());
    assert_eq!(a.coherence, b.coherence);
    assert_eq!(a.faults, b.faults);
}
