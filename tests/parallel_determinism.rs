//! The parallel slice engine's central contract: **bit-identical results
//! for any thread count**.
//!
//! Every registered scenario runs at `Scale::Smoke` with `threads` ∈
//! {1, 2, 4}; the resulting `ScenarioReport` JSON must be byte-identical
//! once the machine-dependent wall-clock columns (`elapsed_ms`,
//! `accesses_per_sec`) are stripped.  A property test then hammers the
//! same invariant over randomized host configurations — vCPU/pCPU counts,
//! sockets, mechanisms, schedulers, balloon events.

use proptest::prelude::*;

use hatric_host::scenario::{registry, Params, Scale};
use hatric_host::{
    BalloonParams, CoherenceMechanism, ConsolidatedHost, HostConfig, HostEvent, NumaConfig,
    NumaPolicy, SchedPolicy, VmSpec,
};

/// Keys whose values are wall-clock measurements (never deterministic).
const TIMING_KEYS: [&str; 2] = ["elapsed_ms", "accesses_per_sec"];

/// Strips the timing fields from a report's JSON text: the records are
/// single-line flat objects, so dropping the `"key":value` pairs (and the
/// comma gluing them in) is a plain string operation.
fn strip_timing(json: &str) -> String {
    let mut out = json.to_string();
    for key in TIMING_KEYS {
        let needle = format!(",\"{key}\":");
        while let Some(start) = out.find(&needle) {
            let value_from = start + needle.len();
            let rest = &out[value_from..];
            let value_len = rest
                .find([',', '}'])
                .expect("a JSON record field is followed by , or }");
            out.replace_range(start..value_from + value_len, "");
        }
        assert!(
            !out.contains(&format!("\"{key}\"")),
            "timing key {key} must only appear in stripping-friendly positions"
        );
    }
    out
}

#[test]
fn every_scenario_is_byte_identical_across_thread_counts() {
    for scenario in registry() {
        let has_threads = scenario
            .default_params(Scale::Smoke)
            .get("threads")
            .is_some();
        let runs: Vec<String> = if has_threads {
            [1usize, 2, 4]
                .iter()
                .map(|&threads| {
                    let report = scenario
                        .run(&Params::new().with("threads", threads), Scale::Smoke)
                        .unwrap_or_else(|err| {
                            panic!("{} threads={threads}: {err}", scenario.name())
                        });
                    strip_timing(&report.to_json())
                })
                .collect()
        } else {
            // Single-VM scenarios take no threads knob; their contract is
            // plain run-to-run determinism.
            (0..2)
                .map(|_| {
                    let report = scenario
                        .run(&Params::new(), Scale::Smoke)
                        .unwrap_or_else(|err| panic!("{}: {err}", scenario.name()));
                    strip_timing(&report.to_json())
                })
                .collect()
        };
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                run.as_str(),
                runs[0].as_str(),
                "{}: run {i} diverged from run 0 (threads sweep: {has_threads})",
                scenario.name()
            );
        }
        assert!(
            !runs[0].is_empty(),
            "{}: stripped report must not be empty",
            scenario.name()
        );
    }
}

#[test]
fn host_scale_rows_strip_to_identical_model_metrics_per_vcpu_point() {
    let scenario = hatric_host::scenario::find("host_scale").expect("host_scale is registered");
    let report = scenario.run(&Params::new(), Scale::Smoke).unwrap();
    for row in &report.rows {
        let vcpus = row.number("vcpus").expect("rows carry vcpus");
        let base = report
            .rows
            .iter()
            .find(|r| r.number("vcpus") == Some(vcpus))
            .expect("first row of the vcpus group");
        for metric in ["host_runtime_cycles", "accesses", "aggressor_remaps"] {
            assert_eq!(
                row.number(metric),
                base.number(metric),
                "{}: {metric} must not depend on the thread count",
                row.label()
            );
        }
    }
}

/// Builds a randomized-but-valid host configuration from drawn knobs.
#[allow(clippy::too_many_arguments)]
fn build_config(
    pcpus_per_socket: usize,
    sockets: usize,
    vm_vcpus: &[usize],
    mechanism_pick: u8,
    sched_pick: u8,
    policy_pick: u8,
    slice_accesses: u64,
    with_balloon: bool,
    threads: usize,
    seed: u64,
) -> HostConfig {
    let num_pcpus = pcpus_per_socket * sockets;
    let quota_per_vm = 96u64;
    let fast_pages = quota_per_vm * vm_vcpus.len() as u64 + 64;
    let mechanism = match mechanism_pick % 4 {
        0 => CoherenceMechanism::Software,
        1 => CoherenceMechanism::UnitdPlusPlus,
        2 => CoherenceMechanism::Hatric,
        _ => CoherenceMechanism::Ideal,
    };
    let sched = match sched_pick % 3 {
        0 => SchedPolicy::Pinned,
        1 => SchedPolicy::RoundRobin,
        // SocketAffine needs the socket topology; it degenerates to the
        // pinned deal-out on one socket, which is fine for this test.
        _ => SchedPolicy::SocketAffine,
    };
    let policy = if policy_pick.is_multiple_of(2) {
        NumaPolicy::FirstTouch
    } else {
        NumaPolicy::Interleaved
    };
    let mut cfg = HostConfig::scaled(num_pcpus, fast_pages)
        .with_mechanism(mechanism)
        .with_numa(NumaConfig::symmetric(sockets))
        .with_numa_policy(policy)
        .with_sched(sched)
        .with_slice_accesses(slice_accesses)
        .with_threads(threads)
        .with_seed(seed);
    for (slot, &vcpus) in vm_vcpus.iter().enumerate() {
        let spec = if slot == 0 {
            // Slot 0 pages hard so remap coherence (the cross-unit effect
            // path) is actually exercised.
            VmSpec::aggressor(vcpus, quota_per_vm)
        } else {
            VmSpec::victim(vcpus, quota_per_vm).with_home_socket(slot % sockets)
        };
        cfg = cfg.with_vm(spec);
    }
    if with_balloon && vm_vcpus.len() >= 2 {
        cfg = cfg.with_event(HostEvent::Balloon(BalloonParams::at(1, 0, 32, 20)));
    }
    cfg
}

fn run_report(cfg: HostConfig) -> String {
    let mut host = ConsolidatedHost::new(cfg).expect("drawn configurations are valid");
    let report = host.run(25, 40);
    format!("{report:?}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid host produces byte-identical reports at 1, 2 and 4
    /// worker threads.
    #[test]
    fn random_hosts_are_thread_count_invariant(
        pcpus_per_socket in 1usize..4,
        sockets_pick in 0u8..2,
        vm_vcpus in proptest::collection::vec(1usize..4, 1..5),
        mechanism_pick in 0u8..4,
        sched_pick in 0u8..3,
        policy_pick in 0u8..2,
        slice_accesses in 5u64..25,
        with_balloon in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let sockets = usize::from(sockets_pick) + 1;
        let cfg = |threads: usize| {
            build_config(
                pcpus_per_socket,
                sockets,
                &vm_vcpus,
                mechanism_pick,
                sched_pick,
                policy_pick,
                slice_accesses,
                with_balloon == 1,
                threads,
                seed,
            )
        };
        prop_assert!(cfg(1).validate().is_ok());
        let serial = run_report(cfg(1));
        let two = run_report(cfg(2));
        let four = run_report(cfg(4));
        prop_assert_eq!(&serial, &two, "threads=2 diverged from threads=1");
        prop_assert_eq!(&serial, &four, "threads=4 diverged from threads=1");
    }
}
