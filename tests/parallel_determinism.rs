//! The parallel slice engine's central contract: **bit-identical results
//! for any thread count**.
//!
//! Every registered scenario runs at `Scale::Smoke` with `threads` ∈
//! {1, 2, 4}; the resulting `ScenarioReport` JSON must be byte-identical
//! once the machine-dependent wall-clock columns (`elapsed_ms`,
//! `accesses_per_sec` and their `mp_` twins) are stripped.  A property
//! test then hammers the same invariant over randomized host
//! configurations — vCPU/pCPU counts, sockets, mechanisms, schedulers,
//! balloon events, in-flight migrations, tracing and counter-timeline
//! sampling — reporting any failure as a labeled per-metric divergence
//! diff rather than two full report blobs.

mod common;

use proptest::prelude::*;

use common::{divergence_summary, strip_timing, RandomHostSpec};
use hatric_host::scenario::{registry, Params, Scale};
use hatric_host::EngineKind;

#[test]
fn every_scenario_is_byte_identical_across_thread_counts() {
    for scenario in registry() {
        let has_threads = scenario
            .default_params(Scale::Smoke)
            .get("threads")
            .is_some();
        let runs: Vec<String> = if has_threads {
            [1usize, 2, 4]
                .iter()
                .map(|&threads| {
                    let report = scenario
                        .run(&Params::new().with("threads", threads), Scale::Smoke)
                        .unwrap_or_else(|err| {
                            panic!("{} threads={threads}: {err}", scenario.name())
                        });
                    strip_timing(&report.to_json())
                })
                .collect()
        } else {
            // Single-VM scenarios take no threads knob; their contract is
            // plain run-to-run determinism.
            (0..2)
                .map(|_| {
                    let report = scenario
                        .run(&Params::new(), Scale::Smoke)
                        .unwrap_or_else(|err| panic!("{}: {err}", scenario.name()));
                    strip_timing(&report.to_json())
                })
                .collect()
        };
        for (i, run) in runs.iter().enumerate().skip(1) {
            assert_eq!(
                run.as_str(),
                runs[0].as_str(),
                "{}: run {i} diverged from run 0 (threads sweep: {has_threads})",
                scenario.name()
            );
        }
        assert!(
            !runs[0].is_empty(),
            "{}: stripped report must not be empty",
            scenario.name()
        );
    }
}

#[test]
fn host_scale_rows_strip_to_identical_model_metrics_per_vcpu_point() {
    let scenario = hatric_host::scenario::find("host_scale").expect("host_scale is registered");
    let report = scenario.run(&Params::new(), Scale::Smoke).unwrap();
    for row in &report.rows {
        let vcpus = row.number("vcpus").expect("rows carry vcpus");
        let base = report
            .rows
            .iter()
            .find(|r| r.number("vcpus") == Some(vcpus))
            .expect("first row of the vcpus group");
        for metric in ["host_runtime_cycles", "accesses", "aggressor_remaps"] {
            assert_eq!(
                row.number(metric),
                base.number(metric),
                "{}: {metric} must not depend on the thread count",
                row.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid host produces byte-identical reports at 1, 2 and 4
    /// worker threads — with tracing, interval-1 counter sampling and an
    /// in-flight live migration in the draw space, since none of those
    /// may move a model metric either.
    #[test]
    fn random_hosts_are_thread_count_invariant(
        pcpus_per_socket in 1usize..4,
        sockets_pick in 0u8..2,
        vm_vcpus in proptest::collection::vec(1usize..4, 1..5),
        mechanism_pick in 0u8..4,
        sched_pick in 0u8..3,
        policy_pick in 0u8..2,
        slice_accesses in 5u64..25,
        with_balloon in 0u8..2,
        with_migration in 0u8..2,
        tracing in 0u8..2,
        timeline in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let spec = RandomHostSpec {
            pcpus_per_socket,
            sockets: usize::from(sockets_pick) + 1,
            vm_vcpus,
            mechanism_pick,
            sched_pick,
            policy_pick,
            slice_accesses,
            with_balloon: with_balloon == 1,
            with_migration: with_migration == 1,
            threads: 1,
            engine: EngineKind::Sliced,
            tracing: tracing == 1,
            timeline: timeline == 1,
            seed,
        };
        prop_assert!(spec.config().validate().is_ok());
        let serial = spec.run();
        for threads in [2usize, 4] {
            if let Some(diff) = divergence_summary(&serial, &spec.clone().with_threads(threads).run()) {
                prop_assert!(false, "threads={threads} diverged from threads=1:\n{diff}");
            }
        }
    }
}
