//! End-to-end tests of the live-migration/ballooning subsystem on the
//! consolidated host: the central downtime + victim-slowdown claims, the
//! stop-and-copy pause invariant under oversubscribed round-robin
//! scheduling, balloon capacity conservation, and determinism with events.

use hatric_host::experiments::migration_storm::{self, MigrationStormParams};
use hatric_host::{
    BalloonParams, CoherenceMechanism, ConsolidatedHost, HostConfig, HostEvent, MigrationParams,
    MigrationPhase, SchedPolicy, VmSpec,
};

/// An oversubscribed round-robin host (8 vCPUs over 4 pCPUs) whose slot-0
/// VM is live-migrated shortly after startup.
fn migrating_host(mechanism: CoherenceMechanism) -> ConsolidatedHost {
    let cfg = HostConfig::scaled(4, 512)
        .with_mechanism(mechanism)
        .with_sched(SchedPolicy::RoundRobin)
        .with_seed(0x314f)
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_event(HostEvent::Migrate(MigrationParams::at(0, 80)));
    ConsolidatedHost::new(cfg).expect("migration test config must validate")
}

#[test]
fn hatric_beats_software_on_downtime_and_victim_slowdown() {
    let rows = migration_storm::run(&MigrationStormParams::quick());
    let by = |m: CoherenceMechanism| rows.iter().find(|r| r.mechanism == m).unwrap();
    let software = by(CoherenceMechanism::Software);
    let hatric = by(CoherenceMechanism::Hatric);
    assert!(software.downtime_cycles > hatric.downtime_cycles);
    assert!(software.victim_slowdown_vs_ideal > hatric.victim_slowdown_vs_ideal);
    assert!(software.victim_disrupted_cycles > 0);
    assert_eq!(hatric.victim_disrupted_cycles, 0);
}

#[test]
fn stop_and_copy_pauses_the_vm_and_no_paused_vcpu_ever_runs() {
    let mut host = migrating_host(CoherenceMechanism::Software);
    let mut saw_pause = false;
    for _ in 0..400 {
        host.run_slices(1);
        if host.is_vm_paused(0) {
            saw_pause = true;
        }
        // The invariant: a slice executed while the VM is fully paused
        // never contains one of its vCPUs.  (The pause is applied at the
        // end of the deciding slice, so checking after each slice is the
        // strictest correct observation point.)
        if host.is_vm_paused(0) {
            assert!(
                host.last_placements().iter().all(|p| p.vm_slot != 0),
                "a vCPU of the fully-paused VM was scheduled"
            );
        }
    }
    assert!(saw_pause, "the migration never reached stop-and-copy");
    assert_eq!(host.migration_phase(), Some(MigrationPhase::Completed));
    assert!(!host.is_vm_paused(0), "the VM must resume after hand-off");
    // The migrated VM kept running after the migration completed.
    let report = host.report();
    assert!(report.migration.migrations_completed == 1);
    assert!(report.per_vm[0].accesses > 0);
}

#[test]
fn migration_stats_land_in_the_host_report() {
    let mut host = migrating_host(CoherenceMechanism::Hatric);
    let report = host.run(40, 360);
    let m = &report.migration;
    assert_eq!(m.migrations_started, 1);
    assert_eq!(m.migrations_completed, 1);
    assert!(m.precopy_rounds >= 1);
    assert!(m.pages_copied > 0);
    assert!(m.downtime_cycles > 0);
    assert!(m.migration_remaps > 0);
    // Migration remaps flow into the migrating VM's coherence activity.
    assert!(report.per_vm[0].coherence.remaps >= m.migration_remaps);
}

#[test]
fn balloon_conserves_capacity_and_counts_per_vm() {
    let balloon = BalloonParams::at(1, 2, 64, 60);
    let cfg = HostConfig::scaled(4, 512)
        .with_mechanism(CoherenceMechanism::Software)
        .with_sched(SchedPolicy::RoundRobin)
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_event(HostEvent::Balloon(balloon));
    let mut host = ConsolidatedHost::new(cfg).expect("balloon test config must validate");
    let report = host.run(40, 260);
    assert_eq!(report.migration.balloon_reclaimed_pages, 64);
    assert_eq!(report.migration.balloon_granted_pages, 64);
    assert_eq!(report.per_vm[1].paging.balloon_reclaimed.get(), 64);
    assert_eq!(report.per_vm[2].paging.balloon_granted.get(), 64);
    // Untouched VMs see no balloon activity.
    assert_eq!(report.per_vm[0].paging.balloon_reclaimed.get(), 0);
    assert_eq!(report.per_vm[0].paging.balloon_granted.get(), 0);
    // The inflated VM was squeezed below its footprint, so pages moved out.
    assert!(report.per_vm[1].faults.pages_demoted > 0);
}

#[test]
fn migration_straddling_the_warmup_boundary_keeps_started_ge_completed() {
    // A slow-link migration begins during warmup and finishes in the
    // measured phase; the measurement reset must not wipe the in-flight
    // migration's "started" marker.
    let mut params = MigrationParams::at(0, 10);
    params.copy_pages_per_slice = 4;
    let cfg = HostConfig::scaled(4, 512)
        .with_mechanism(CoherenceMechanism::Hatric)
        .with_sched(SchedPolicy::RoundRobin)
        .with_vm(VmSpec::victim(2, 128))
        .with_vm(VmSpec::victim(2, 128))
        .with_event(HostEvent::Migrate(params));
    let mut host = ConsolidatedHost::new(cfg).expect("straddle test config must validate");
    let report = host.run(20, 400);
    let m = &report.migration;
    assert_eq!(m.migrations_completed, 1, "migration must finish");
    assert!(
        m.migrations_started >= m.migrations_completed,
        "started {} must cover completed {}",
        m.migrations_started,
        m.migrations_completed
    );
    assert!(m.precopy_rounds >= 1);
}

#[test]
fn event_reports_are_deterministic_for_a_fixed_seed() {
    let run = || {
        let mut host = migrating_host(CoherenceMechanism::Software);
        host.run(50, 300)
    };
    assert_eq!(run(), run());
}

#[test]
fn invalid_events_are_rejected() {
    let base = || {
        HostConfig::scaled(2, 256)
            .with_vm(VmSpec::victim(1, 128))
            .with_vm(VmSpec::victim(1, 128))
    };
    // Unknown migration slot.
    let cfg = base().with_event(HostEvent::Migrate(MigrationParams::at(5, 0)));
    assert!(cfg.validate().is_err());
    // Balloon from a VM onto itself.
    let cfg = base().with_event(HostEvent::Balloon(BalloonParams::at(1, 1, 16, 0)));
    assert!(cfg.validate().is_err());
    // Balloon draining more than the quota.
    let cfg = base().with_event(HostEvent::Balloon(BalloonParams::at(0, 1, 1_000, 0)));
    assert!(cfg.validate().is_err());
    // A well-formed pair of events passes.
    let cfg = base()
        .with_event(HostEvent::Migrate(MigrationParams::at(0, 10)))
        .with_event(HostEvent::Balloon(BalloonParams::at(0, 1, 64, 50)));
    assert!(cfg.validate().is_ok());
}
