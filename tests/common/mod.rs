//! Helpers shared by the workspace integration tests: timing-key
//! stripping, randomized host construction for the determinism property
//! tests, and labeled divergence diffs (via [`hatric_host::diff`]) so a
//! failing equality assertion names the first diverging metric instead of
//! dumping two full report blobs.
//!
//! Each integration-test binary compiles its own copy of this module and
//! uses a subset of it, hence the file-wide `dead_code` allowance.

#![allow(dead_code)]

use hatric_host::diff::{diff_reports, DiffOptions};
use hatric_host::scenario::{Row, ScenarioReport};
use hatric_host::{
    BalloonParams, CoherenceMechanism, ConsolidatedHost, EngineKind, HostConfig, HostEvent,
    HostReport, MigrationParams, NumaConfig, NumaPolicy, SchedPolicy, VmSpec,
};

/// Keys whose values are wall-clock measurements (never deterministic).
/// The `mp_`-prefixed pair comes first so the plain keys' post-strip
/// sanity check cannot be confused by the longer names.
pub const TIMING_KEYS: [&str; 4] = [
    "mp_elapsed_ms",
    "mp_accesses_per_sec",
    "elapsed_ms",
    "accesses_per_sec",
];

/// Strips the timing fields from a report's JSON text: the records are
/// single-line flat objects, so dropping the `"key":value` pairs (and the
/// comma gluing them in) is a plain string operation.
pub fn strip_timing(json: &str) -> String {
    let mut out = json.to_string();
    for key in TIMING_KEYS {
        let needle = format!(",\"{key}\":");
        while let Some(start) = out.find(&needle) {
            let value_from = start + needle.len();
            let rest = &out[value_from..];
            let value_len = rest
                .find([',', '}'])
                .expect("a JSON record field is followed by , or }");
            out.replace_range(start..value_from + value_len, "");
        }
        assert!(
            !out.contains(&format!("\"{key}\"")),
            "timing key {key} must only appear in stripping-friendly positions"
        );
    }
    out
}

/// The `(label, mechanism)` keys of a report's rows, sorted — the shape
/// comparison round-trip and conformance tests align rows on.
pub fn sorted_row_keys(report: &ScenarioReport) -> Vec<String> {
    let mut keys: Vec<String> = report
        .rows
        .iter()
        .map(|row| format!("{}/{}", row.label(), row.mechanism()))
        .collect();
    keys.sort();
    keys
}

/// A randomized-but-valid consolidated-host draw: the knobs the
/// determinism and engine-conformance property tests fuzz over.
#[derive(Debug, Clone)]
pub struct RandomHostSpec {
    /// Physical CPUs per socket.
    pub pcpus_per_socket: usize,
    /// Socket count.
    pub sockets: usize,
    /// One entry per VM: its vCPU count (slot 0 is the paging aggressor).
    pub vm_vcpus: Vec<usize>,
    /// Coherence-mechanism selector (mod 4).
    pub mechanism_pick: u8,
    /// Scheduler selector (mod 3).
    pub sched_pick: u8,
    /// NUMA-placement selector (mod 2).
    pub policy_pick: u8,
    /// Accesses per scheduled vCPU per slice.
    pub slice_accesses: u64,
    /// Inject a mid-run balloon event (needs ≥ 2 VMs to land).
    pub with_balloon: bool,
    /// Inject an in-flight live migration of VM 0.
    pub with_migration: bool,
    /// Slice-engine worker threads.
    pub threads: usize,
    /// Slice-executor backend.
    pub engine: EngineKind,
    /// Enable the sim-time trace sink (must not move a model metric).
    pub tracing: bool,
    /// Enable counter-timeline sampling at interval 1 (likewise inert).
    pub timeline: bool,
    /// Master seed.
    pub seed: u64,
}

/// Warmup slices every [`RandomHostSpec`] run executes.
pub const SPEC_WARMUP: u64 = 25;
/// Measured slices every [`RandomHostSpec`] run executes.
pub const SPEC_MEASURED: u64 = 40;

impl RandomHostSpec {
    /// The host configuration this draw describes.
    pub fn config(&self) -> HostConfig {
        let num_pcpus = self.pcpus_per_socket * self.sockets;
        let quota_per_vm = 96u64;
        let fast_pages = quota_per_vm * self.vm_vcpus.len() as u64 + 64;
        let mechanism = match self.mechanism_pick % 4 {
            0 => CoherenceMechanism::Software,
            1 => CoherenceMechanism::UnitdPlusPlus,
            2 => CoherenceMechanism::Hatric,
            _ => CoherenceMechanism::Ideal,
        };
        let sched = match self.sched_pick % 3 {
            0 => SchedPolicy::Pinned,
            1 => SchedPolicy::RoundRobin,
            // SocketAffine needs the socket topology; it degenerates to the
            // pinned deal-out on one socket, which is fine for these tests.
            _ => SchedPolicy::SocketAffine,
        };
        let policy = if self.policy_pick.is_multiple_of(2) {
            NumaPolicy::FirstTouch
        } else {
            NumaPolicy::Interleaved
        };
        let mut cfg = HostConfig::scaled(num_pcpus, fast_pages)
            .with_mechanism(mechanism)
            .with_numa(NumaConfig::symmetric(self.sockets))
            .with_numa_policy(policy)
            .with_sched(sched)
            .with_slice_accesses(self.slice_accesses)
            .with_threads(self.threads)
            .with_engine(self.engine)
            .with_seed(self.seed);
        for (slot, &vcpus) in self.vm_vcpus.iter().enumerate() {
            let spec = if slot == 0 {
                // Slot 0 pages hard so remap coherence (the cross-unit
                // effect path) is actually exercised.
                VmSpec::aggressor(vcpus, quota_per_vm)
            } else {
                VmSpec::victim(vcpus, quota_per_vm).with_home_socket(slot % self.sockets)
            };
            cfg = cfg.with_vm(spec);
        }
        if self.with_balloon && self.vm_vcpus.len() >= 2 {
            cfg = cfg.with_event(HostEvent::Balloon(BalloonParams::at(1, 0, 32, 20)));
        }
        if self.with_migration {
            // Starts inside the measured phase; whether it completes before
            // the window closes is part of the modeled (deterministic)
            // behaviour under test.
            cfg = cfg.with_event(HostEvent::Migrate(MigrationParams::at(
                0,
                SPEC_WARMUP + SPEC_MEASURED / 4,
            )));
        }
        cfg
    }

    /// Runs the drawn host and returns its report.
    ///
    /// # Panics
    ///
    /// Panics if the drawn configuration is invalid (the draw domains keep
    /// it valid by construction).
    pub fn run(&self) -> HostReport {
        let mut host =
            ConsolidatedHost::new(self.config()).expect("drawn configurations are valid");
        if self.tracing {
            host.enable_tracing(1 << 14);
        }
        if self.timeline {
            host.enable_timeline(1);
        }
        host.run(SPEC_WARMUP, SPEC_MEASURED)
    }

    /// Returns a copy running on `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy running under `engine`.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// Flattens a [`HostReport`] into diffable labeled rows (host aggregate,
/// migration stats, one row per VM) so [`divergence_summary`] can name the
/// metric that moved.
fn metric_rows(report: &HostReport) -> ScenarioReport {
    let sim_row = |row: Row, sim: &hatric_host::SimReport| {
        row.count("runtime_cycles", sim.runtime_cycles())
            .count("accesses", sim.accesses)
            .count("remaps", sim.coherence.remaps)
            .count("ipis", sim.coherence.ipis)
            .count("coherence_vm_exits", sim.coherence.coherence_vm_exits)
            .count("full_flushes", sim.coherence.full_flushes)
            .count("disrupted_cycles", sim.interference.disrupted_cycles)
            .count("inflicted_cycles", sim.interference.inflicted_cycles)
            .count("demand_faults", sim.faults.demand_faults)
            .count("pages_promoted", sim.faults.pages_promoted)
            .count("pages_demoted", sim.faults.pages_demoted)
            .count("walk_p50", sim.latency.walk.p50())
            .count("walk_p99", sim.latency.walk.p99())
            .count("shootdown_p99", sim.latency.shootdown.p99())
    };
    let mut out = ScenarioReport::new("host_report");
    out.push(sim_row(Row::new("scope", "host", "model"), &report.host));
    out.push(
        Row::new("scope", "migration", "model")
            .count(
                "migrations_completed",
                report.migration.migrations_completed,
            )
            .count("precopy_rounds", report.migration.precopy_rounds)
            .count("pages_copied", report.migration.pages_copied)
            .count("downtime_cycles", report.migration.downtime_cycles)
            .count("migration_remaps", report.migration.migration_remaps)
            .count(
                "balloon_reclaimed_pages",
                report.migration.balloon_reclaimed_pages,
            ),
    );
    for (slot, sim) in report.per_vm.iter().enumerate() {
        out.push(sim_row(
            Row::new("scope", &format!("vm{slot}"), "model"),
            sim,
        ));
    }
    out
}

/// Steps `at` down to the nearest char boundary of `s`.
fn floor_char_boundary(s: &str, mut at: usize) -> usize {
    at = at.min(s.len());
    while at > 0 && !s.is_char_boundary(at) {
        at -= 1;
    }
    at
}

/// `None` when the two reports are byte-identical (their `Debug`
/// renderings — the strongest equality the determinism tests assert).
/// Otherwise a labeled summary: the diverging metrics by name (first
/// divergence first, via the diff observatory at tolerance 0), or — if
/// every summarised metric agrees and only a deeper field differs — a
/// window around the first differing byte of the two renderings.
pub fn divergence_summary(a: &HostReport, b: &HostReport) -> Option<String> {
    let (blob_a, blob_b) = (format!("{a:?}"), format!("{b:?}"));
    if blob_a == blob_b {
        return None;
    }
    let exact = DiffOptions {
        tolerance: 0.0,
        symmetric: true,
        gated_only: false,
    };
    let diff = diff_reports(&metric_rows(a), &metric_rows(b), &[], exact);
    let diverged: Vec<String> = diff
        .deltas
        .iter()
        .filter(|d| d.a != d.b)
        .map(|d| format!("  {} {}: a={} b={}", d.row, d.metric, d.a, d.b))
        .collect();
    if !diverged.is_empty() {
        return Some(format!(
            "{} metric(s) diverged (first listed first):\n{}",
            diverged.len(),
            diverged.join("\n")
        ));
    }
    let at = blob_a
        .bytes()
        .zip(blob_b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| blob_a.len().min(blob_b.len()));
    let from = floor_char_boundary(&blob_a, at.saturating_sub(80));
    let to_a = floor_char_boundary(&blob_a, at + 80);
    let to_b = floor_char_boundary(&blob_b, at + 80);
    Some(format!(
        "no summarised metric moved; reports first differ at byte {at}:\n  a: …{}…\n  b: …{}…",
        &blob_a[from..to_a],
        &blob_b[from..to_b.min(blob_b.len())]
    ))
}
