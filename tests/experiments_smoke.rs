//! Smoke tests for the per-figure experiment runners: every runner executes
//! at a tiny scale and its results have the qualitative shape the paper
//! reports.  (The benchmark harness regenerates the full-size tables, and
//! `scenario_registry.rs` smoke-runs every *registered* scenario through
//! the unified `hatric_host::scenario` API.)

use hatric::experiments::{
    fig10, fig11, fig12, fig13, fig2, fig7, fig8, fig9, xen, ExperimentParams,
};

fn tiny() -> ExperimentParams {
    ExperimentParams {
        vcpus: 4,
        fast_pages: 256,
        warmup: 800,
        measured: 1_200,
        seed: 0x51_0e,
    }
}

#[test]
fn fig2_shape_paging_potential() {
    let rows = fig2::run(&tiny());
    assert_eq!(rows.len(), 5);
    for row in &rows {
        // Infinite die-stacked DRAM always helps.
        assert!(
            row.inf_hbm < 1.0,
            "{}: inf-hbm {}",
            row.workload,
            row.inf_hbm
        );
        // Ideal coherence is at least as good as software coherence.
        assert!(
            row.achievable <= row.curr_best + 0.02,
            "{}: achievable {} vs curr-best {}",
            row.workload,
            row.achievable,
            row.curr_best
        );
    }
    // Software translation coherence hurts at least one low-locality
    // workload badly (the paper: data caching and tunkrank regress).
    assert!(
        rows.iter().any(|r| r.curr_best > r.achievable + 0.05),
        "software coherence should visibly cost performance: {rows:?}"
    );
    println!("{}", fig2::format_table(&rows));
}

#[test]
fn fig7_hatric_tracks_ideal_across_vcpu_counts() {
    let rows = fig7::run(&tiny());
    assert_eq!(rows.len(), 5 * 3);
    for row in &rows {
        assert!(row.hatric <= row.sw + 0.02, "{row:?}");
        assert!((row.hatric - row.ideal).abs() < 0.25, "{row:?}");
    }
}

#[test]
fn fig8_hatric_helps_for_every_paging_policy() {
    let rows = fig8::run(&tiny());
    assert_eq!(rows.len(), 5 * 3);
    for row in &rows {
        assert!(row.hatric <= row.sw + 0.02, "{row:?}");
    }
}

#[test]
fn fig9_bigger_structures_help_hatric_more_than_software() {
    let rows = fig9::run(&tiny());
    assert_eq!(rows.len(), 5 * 3);
    for row in &rows {
        assert!(row.hatric <= row.sw + 0.02, "{row:?}");
    }
}

#[test]
fn fig10_hatric_fixes_multiprogrammed_regressions() {
    let rows = fig10::run(&tiny(), 4);
    assert_eq!(rows.len(), 4);
    let summary = fig10::summarise(&rows);
    assert!(summary.mean_weighted_hatric <= summary.mean_weighted_sw + 1e-9);
    assert!(summary.worst_slowest_hatric <= summary.worst_slowest_sw + 1e-9);
}

#[test]
fn fig11_cotag_sweep_has_three_points_and_sane_ratios() {
    let rows = fig11::run_cotag_sweep(&tiny());
    assert_eq!(rows.len(), 3);
    for row in &rows {
        assert!(
            row.runtime_ratio > 0.0 && row.runtime_ratio <= 1.05,
            "{row:?}"
        );
        assert!(row.energy_ratio > 0.0, "{row:?}");
    }
}

#[test]
fn fig11_scatter_hatric_boosts_performance() {
    let points = fig11::run_scatter(&tiny());
    assert_eq!(points.len(), 6);
    for p in &points {
        assert!(p.runtime_ratio <= 1.03, "{p:?}");
    }
}

#[test]
fn fig12_variants_are_close_to_baseline_hatric() {
    let rows = fig12::run(&tiny());
    assert_eq!(rows.len(), 5);
    let baseline = rows.iter().find(|r| r.variant == "HATRIC").unwrap();
    for row in &rows {
        assert!(
            (row.runtime_ratio - baseline.runtime_ratio).abs() < 0.2,
            "{row:?}"
        );
    }
}

#[test]
fn fig13_hatric_beats_unitd_which_beats_software() {
    let rows = fig13::run(&tiny());
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(row.hatric_runtime <= row.unitd_runtime + 0.03, "{row:?}");
        assert!(row.unitd_runtime <= row.sw_runtime + 0.03, "{row:?}");
    }
}

#[test]
fn xen_results_show_improvements() {
    let rows = xen::run(&tiny());
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(
            row.improvement_percent > 0.0,
            "HATRIC should improve Xen too: {row:?}"
        );
    }
}
