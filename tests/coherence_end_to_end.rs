//! End-to-end translation-coherence correctness: after the hypervisor
//! remaps a page, no CPU may keep using the stale translation, under any
//! mechanism.

use hatric::{CoherenceMechanism, CpuId, System, SystemConfig};
use hatric_types::{AddressSpaceId, GuestVirtPage};
use hatric_workloads::Access;

fn make_system(mechanism: CoherenceMechanism) -> System {
    System::new(SystemConfig::scaled(4, 256).with_mechanism(mechanism)).unwrap()
}

fn touch(system: &mut System, cpu: u32, page: u64) {
    system.step(
        CpuId::new(cpu),
        AddressSpaceId::new(0),
        Access {
            gvp: GuestVirtPage::new(page),
            line_in_page: 0,
            is_write: false,
            compute_cycles: 1,
        },
    );
}

/// Touching the same page from several CPUs, then remapping it, must leave
/// no stale GVP→SPP translation anywhere.
fn check_no_stale_translation(mechanism: CoherenceMechanism) {
    let mut system = make_system(mechanism);
    let page = 0x400;
    for cpu in 0..4 {
        touch(&mut system, cpu, page);
    }
    // Every CPU now caches the translation.
    let gvp = GuestVirtPage::new(page);
    let gpp = system.guest_page_table().translate(gvp).unwrap();
    let old_spp = system.nested_page_table().translate(gpp).unwrap();

    // The hypervisor migrates the page: pick a fresh frame well away from
    // the old one and rewrite the nested page table, triggering coherence.
    let new_spp = hatric_types::SystemFrame::new(old_spp.number() + 0x5_0000);
    let mut nested = system.nested_page_table().clone();
    let pte_addr = nested.remap(gpp, new_spp).unwrap();
    // (System keeps its own nested table; use the public remap path.)
    drop(nested);
    system.remap_coherence(CpuId::new(0), pte_addr);

    // After coherence, no CPU's TLB may return the old SPP for this page.
    for cpu in 0..4u32 {
        let ts = system.translation_structures(CpuId::new(cpu));
        let mut probe = ts.clone();
        if let Some(hit) =
            probe.lookup_data(hatric_types::VmId::new(0), AddressSpaceId::new(0), gvp)
        {
            assert_ne!(
                hit.spp, old_spp,
                "{mechanism:?}: cpu{cpu} still translates to the stale frame"
            );
        }
    }
}

#[test]
fn software_shootdown_leaves_no_stale_entries() {
    check_no_stale_translation(CoherenceMechanism::Software);
}

#[test]
fn hatric_leaves_no_stale_entries() {
    check_no_stale_translation(CoherenceMechanism::Hatric);
}

#[test]
fn unitd_leaves_no_stale_entries() {
    check_no_stale_translation(CoherenceMechanism::UnitdPlusPlus);
}

#[test]
fn ideal_leaves_no_stale_entries() {
    check_no_stale_translation(CoherenceMechanism::Ideal);
}

#[test]
fn hatric_spares_unrelated_translations() {
    let mut system = make_system(CoherenceMechanism::Hatric);
    // CPU 0 caches translations for two pages far apart (different PT lines).
    touch(&mut system, 0, 0x400);
    touch(&mut system, 0, 0x400 + 512);
    let gvp_other = GuestVirtPage::new(0x400 + 512);

    let gpp = system
        .guest_page_table()
        .translate(GuestVirtPage::new(0x400))
        .unwrap();
    let pte_addr = system.nested_page_table().leaf_entry_addr(gpp).unwrap();
    system.remap_coherence(CpuId::new(0), pte_addr);

    // The unrelated page's translation must survive (HATRIC is selective).
    let mut probe = system.translation_structures(CpuId::new(0)).clone();
    assert!(
        probe
            .lookup_data(
                hatric_types::VmId::new(0),
                AddressSpaceId::new(0),
                gvp_other
            )
            .is_some(),
        "HATRIC must not invalidate unrelated translations"
    );
}

#[test]
fn software_flushes_unrelated_translations_too() {
    let mut system = make_system(CoherenceMechanism::Software);
    touch(&mut system, 0, 0x400);
    touch(&mut system, 0, 0x400 + 512);
    let gvp_other = GuestVirtPage::new(0x400 + 512);

    let gpp = system
        .guest_page_table()
        .translate(GuestVirtPage::new(0x400))
        .unwrap();
    let pte_addr = system.nested_page_table().leaf_entry_addr(gpp).unwrap();
    system.remap_coherence(CpuId::new(0), pte_addr);

    let mut probe = system.translation_structures(CpuId::new(0)).clone();
    assert!(
        probe
            .lookup_data(
                hatric_types::VmId::new(0),
                AddressSpaceId::new(0),
                gvp_other
            )
            .is_none(),
        "the software path flushes everything, including unrelated entries"
    );
}
