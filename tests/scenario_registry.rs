//! Registry-wide smoke tests: every registered scenario runs at
//! `Scale::Smoke`, yields non-empty rows in the uniform report schema, and
//! both its parameters and its report round-trip through the JSON codec
//! byte-stably.  (The per-figure shape assertions live in
//! `experiments_smoke.rs`; the bench-scale sweeps are gated by
//! `bench_check` against the committed baselines.)

mod common;

use hatric_host::scenario::{find, registry, Params, Scale, ScenarioReport};
use hatric_types::ConfigError;

#[test]
fn every_scenario_smokes_with_rows_and_byte_stable_round_trips() {
    assert!(registry().len() >= 5, "the ISSUE promises ≥ 5 scenarios");
    for scenario in registry() {
        // Parameter serde round-trip.
        let params = scenario.default_params(Scale::Smoke);
        assert!(
            !params.entries().is_empty(),
            "{}: scenarios must publish their knobs",
            scenario.name()
        );
        let params_json = params.to_json();
        let params_back = Params::from_json(&params_json)
            .unwrap_or_else(|| panic!("{}: params must parse back", scenario.name()));
        assert_eq!(params_back, params, "{}", scenario.name());
        assert_eq!(params_back.to_json(), params_json, "{}", scenario.name());

        // The smoke run itself.
        let report = scenario
            .run(&Params::new(), Scale::Smoke)
            .unwrap_or_else(|err| panic!("{}: smoke run failed: {err}", scenario.name()));
        assert_eq!(report.scenario, scenario.name());
        assert!(!report.rows.is_empty(), "{}: empty report", scenario.name());
        for row in &report.rows {
            assert!(!row.label().is_empty());
            assert!(!row.mechanism().is_empty());
            assert!(
                row.fields().len() > 2,
                "{}: rows must carry metrics beyond their labels",
                scenario.name()
            );
        }

        // Report serde round-trip.  Ratio metrics are recorded at six
        // decimals, so the contract is byte-stability of the JSON (what
        // `bench_check` and the committed baselines rely on) plus shape
        // equality — not bit-equality of the in-memory f64s.
        let json = report.to_json();
        let back = ScenarioReport::from_json(scenario.name(), &json)
            .unwrap_or_else(|| panic!("{}: report must parse back", scenario.name()));
        assert_eq!(back.to_json(), json, "{}", scenario.name());
        assert_eq!(back.rows.len(), report.rows.len());
        assert_eq!(
            common::sorted_row_keys(&back),
            common::sorted_row_keys(&report),
            "{}",
            scenario.name()
        );
    }
}

#[test]
fn readme_scenario_catalog_matches_the_registry() {
    // The README embeds `scenarios --list --md` output between markers; if
    // the registry (or a describe() string) changes without regenerating
    // the table, this fails and names the command to re-run.
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md exists at the workspace root");
    let begin = "<!-- scenarios --list --md BEGIN -->\n";
    let end = "<!-- scenarios --list --md END -->";
    let start = readme.find(begin).expect("README has the BEGIN marker") + begin.len();
    let stop = readme.find(end).expect("README has the END marker");
    assert_eq!(
        &readme[start..stop],
        hatric_host::scenario::catalog_markdown(),
        "README scenario catalog is stale — regenerate it with \
         `cargo run -p hatric-host --bin scenarios -- --list --md`"
    );
}

#[test]
fn invalid_sweep_point_combinations_are_typed_errors_not_panics() {
    // 6 pCPUs pass the single-socket base validation but cannot split
    // across the sweep's 4-socket point; the scenario must reject the
    // combination up front instead of panicking mid-sweep.
    let err = find("numa_contention")
        .unwrap()
        .run(&Params::new().with("num_pcpus", 6), Scale::Smoke)
        .unwrap_err();
    assert!(
        matches!(err, ConfigError::Invalid { ref what } if what.contains("socket")),
        "expected a socket-split ConfigError, got {err:?}"
    );
}

#[test]
fn comparative_scenarios_sweep_all_four_mechanisms() {
    for name in ["multivm", "migration_storm", "numa_contention"] {
        let scenario = find(name).unwrap();
        let report = scenario.run(&Params::new(), Scale::Smoke).unwrap();
        for label in report.labels() {
            for mechanism in ["Software", "UnitdPlusPlus", "Hatric", "Ideal"] {
                assert!(
                    report.find(label, mechanism).is_some(),
                    "{name}/{label}: missing {mechanism} row"
                );
            }
        }
    }
}

#[test]
fn parameter_overrides_reach_the_run_and_unknown_keys_do_not() {
    let scenario = find("xen").unwrap();
    // Halving the measured phase must change the resulting ratios'
    // underlying runs (cheap way to prove overrides are honoured: the run
    // still succeeds and produces the same schema).
    let report = scenario
        .run(&Params::new().with("measured", 800), Scale::Smoke)
        .unwrap();
    assert!(!report.rows.is_empty());
    let err = scenario
        .run(&Params::new().with("measurd", 800), Scale::Smoke)
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::UnknownParam {
            key: "measurd".into()
        }
    );
}

#[test]
fn invalid_override_values_are_typed_errors_not_panics() {
    let scenario = find("multivm").unwrap();
    let err = scenario
        .run(&Params::new().with("fast_pages", "lots"), Scale::Smoke)
        .unwrap_err();
    assert_eq!(
        err,
        ConfigError::BadValue {
            key: "fast_pages".into(),
            value: "lots".into()
        }
    );
    // A parameter combination that breaks a host invariant surfaces the
    // typed host error instead of panicking deep in the simulator.
    let err = scenario
        .run(&Params::new().with("num_pcpus", 0), Scale::Smoke)
        .unwrap_err();
    assert_eq!(err, ConfigError::ZeroPcpus);
}
