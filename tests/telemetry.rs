//! The observability subsystem's contracts:
//!
//! 1. **Zero perturbation** — model metrics are byte-identical with
//!    tracing on vs off, at every worker thread count.  The trace sink
//!    and histograms are keyed entirely to simulated cycles; turning them
//!    on must never move a simulated number.
//! 2. **Chrome trace export round-trips** — the exported document is
//!    well-formed JSON and every track's spans carry monotonically
//!    non-decreasing timestamps (each track maps to a cycle counter that
//!    only moves forward).
//! 3. **The expected spans exist** — a traced migration run records the
//!    full lifecycle: scheduler slices, remap fan-outs, per-target
//!    invalidation acks, pre-copy rounds and the stop-and-copy burst.
//! 4. **Counter timelines sample without perturbing** — the commit-barrier
//!    gauge sampler records the same timeline at every thread count and
//!    never moves a model metric, and its Chrome counter / CSV exports are
//!    well-formed.
//! 5. **Causal attribution reconciles** — every per-remap ledger's totals
//!    equal the interference and NUMA counters charged at the same sites,
//!    exactly.

mod common;

use std::collections::BTreeMap;

use hatric_host::diff::{diff_json, DiffOptions};
use hatric_host::scenario::{append_meta_record, bench_meta_json, find, Metric, Params, Scale};
use hatric_host::HostReport;
use hatric_host::{
    CoherenceMechanism, ConsolidatedHost, HostConfig, HostEvent, MigrationParams, SchedPolicy,
    VmSpec,
};

const WARMUP: u64 = 60;
const MEASURED: u64 = 160;

/// A small consolidated host that exercises every traced path: a
/// paging-heavy aggressor (remap + shootdown spans), victims (scheduler
/// interference) and a live migration starting inside the measured
/// window (pre-copy rounds + stop-and-copy).
fn storm_config(threads: usize) -> HostConfig {
    HostConfig::scaled(4, 512)
        .with_mechanism(CoherenceMechanism::Software)
        .with_sched(SchedPolicy::RoundRobin)
        .with_threads(threads)
        .with_vm(VmSpec::aggressor(2, 192))
        .with_vm(VmSpec::victim(2, 128))
        .with_event(HostEvent::Migrate(MigrationParams::at(1, WARMUP + 20)))
}

fn run_report(threads: usize, tracing: bool) -> HostReport {
    let mut host = ConsolidatedHost::new(storm_config(threads)).expect("storm config is valid");
    if tracing {
        host.enable_tracing(1 << 14);
    }
    host.run(WARMUP, MEASURED)
}

#[test]
fn model_metrics_are_identical_with_tracing_on_or_off_at_any_thread_count() {
    let baseline = run_report(1, false);
    for threads in [1usize, 2, 4] {
        for tracing in [false, true] {
            if let Some(diff) = common::divergence_summary(&baseline, &run_report(threads, tracing))
            {
                panic!(
                    "threads={threads} tracing={tracing}: model metrics diverged from \
                     threads=1 tracing=off:\n{diff}"
                );
            }
        }
    }
}

fn traced_host() -> ConsolidatedHost {
    let mut host = ConsolidatedHost::new(storm_config(2)).expect("storm config is valid");
    host.enable_tracing(1 << 14);
    host.run(WARMUP, MEASURED);
    host
}

#[test]
fn traced_run_records_the_full_lifecycle() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    assert!(!sink.is_empty(), "a traced storm run must record spans");
    let names: Vec<&str> = sink.events().map(|e| e.name).collect();
    for expected in [
        "slice",
        "remap_software",
        "inval_target",
        "precopy_round",
        "stop_and_copy",
    ] {
        assert!(
            names.contains(&expected),
            "trace must contain a `{expected}` span (got: {:?})",
            {
                let mut distinct: Vec<&str> = names.clone();
                distinct.sort_unstable();
                distinct.dedup();
                distinct
            }
        );
    }
    // The warmup/measured boundary clears the sink, so every span sits in
    // the measured phase — no timestamp can predate the counter reset.
    let max_dur_end = sink.events().map(|e| e.ts + e.dur).max().unwrap_or(0);
    assert!(max_dur_end > 0, "measured-phase spans must have extent");
}

#[test]
fn trace_timestamps_are_monotone_within_each_track() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    for event in sink.events() {
        let prev = last_ts.entry(event.track).or_insert(0);
        assert!(
            event.ts >= *prev,
            "track {} went backwards: span `{}` at ts {} after ts {}",
            event.track,
            event.name,
            event.ts,
            prev
        );
        *prev = event.ts;
    }
    assert!(last_ts.len() > 1, "spans must land on more than one track");
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    let json = host.export_trace().expect("tracing is enabled");
    assert!(json.starts_with("{\"traceEvents\":[\n"));
    // The document closes with the ring-drop metadata; this sink never
    // wrapped, so the count is zero.
    assert!(json.ends_with("\n],\"metadata\":{\"droppedSpans\":0}}\n"));
    // Structural well-formedness: brackets and braces balance, and never
    // go negative (the minimal-JSON writer emits no strings containing
    // either, so plain counting is exact).
    let mut depth = 0i64;
    for ch in json.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in exported trace");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "exported trace must balance its brackets");
    // One complete-event record per held span.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), sink.len());
    // Every record carries the fixed Chrome fields.
    assert_eq!(json.matches("\"pid\":0").count(), sink.len());
}

#[test]
fn scenario_trace_run_emits_migration_spans() {
    let scenario = find("migration_storm").expect("migration_storm is registered");
    let traced = scenario
        .trace_run(&Params::new(), Scale::Smoke)
        .expect("migration_storm supports tracing")
        .expect("smoke trace run succeeds");
    for expected in ["remap_software", "precopy_round", "stop_and_copy", "slice"] {
        assert!(
            traced.contains(&format!("\"name\":\"{expected}\"")),
            "migration_storm trace must contain `{expected}` spans"
        );
    }
    // The figure scenarios run on the single-VM System and trace through
    // its platform sink: same document shape, scheduler-free span set.
    let fig_trace = find("fig9")
        .expect("fig9 is registered")
        .trace_run(&Params::new(), Scale::Smoke)
        .expect("fig9 traces through the System")
        .expect("smoke trace run succeeds");
    assert!(fig_trace.starts_with("{\"traceEvents\":["));
    assert!(fig_trace.contains("\"name\":\"remap_software\""));
}

#[test]
fn report_rows_carry_latency_percentiles() {
    let scenario = find("multivm").expect("multivm is registered");
    let report = scenario
        .run(&Params::new(), Scale::Smoke)
        .expect("smoke run succeeds");
    for row in &report.rows {
        for key in [
            "walk_p50",
            "walk_p99",
            "shootdown_p50",
            "shootdown_p99",
            "dram_queue_p50",
            "dram_queue_p99",
        ] {
            assert!(
                row.number(key).is_some(),
                "{}/{}: row must carry {key}",
                row.label(),
                row.mechanism()
            );
        }
        assert!(
            row.number("walk_p99") >= row.number("walk_p50"),
            "p99 can never undercut p50"
        );
        assert!(
            row.number("walk_p50").unwrap_or(0.0) > 0.0,
            "every VM performs nested walks, so the median is positive"
        );
    }
}

// ---------------------------------------------------------------------------
// Counter timelines
// ---------------------------------------------------------------------------

fn run_report_with_sampling(threads: usize, interval: Option<u64>) -> HostReport {
    let mut host = ConsolidatedHost::new(storm_config(threads)).expect("storm config is valid");
    if let Some(interval) = interval {
        host.enable_timeline(interval);
    }
    host.run(WARMUP, MEASURED)
}

#[test]
fn model_metrics_are_identical_with_sampling_on_or_off_at_any_thread_count() {
    let baseline = run_report_with_sampling(1, None);
    for threads in [1usize, 2, 4] {
        for interval in [None, Some(1), Some(8)] {
            if let Some(diff) =
                common::divergence_summary(&baseline, &run_report_with_sampling(threads, interval))
            {
                panic!(
                    "threads={threads} sampling={interval:?}: model metrics diverged from \
                     threads=1 sampling=off:\n{diff}"
                );
            }
        }
    }
}

fn storm_timeline(threads: usize, interval: u64) -> ConsolidatedHost {
    let mut host = ConsolidatedHost::new(storm_config(threads)).expect("storm config is valid");
    host.enable_timeline(interval);
    host.run(WARMUP, MEASURED);
    host
}

#[test]
fn timelines_are_byte_identical_across_thread_counts() {
    let reference = storm_timeline(1, 4)
        .timeline()
        .expect("sampling is enabled")
        .export_csv();
    assert_eq!(
        reference.lines().count() as u64,
        MEASURED / 4 + 1,
        "interval 4 samples exactly the measured slices (plus the CSV header)"
    );
    for threads in [2usize, 4] {
        let csv = storm_timeline(threads, 4)
            .timeline()
            .expect("sampling is enabled")
            .export_csv();
        assert_eq!(
            csv, reference,
            "threads={threads}: every gauge reads committed canonical state, so the \
             timeline must not depend on the worker thread count"
        );
    }
}

#[test]
fn timeline_exports_are_well_formed_and_capture_the_storm() {
    // Interval 1 so the short-lived dirty-page window (the pre-copy drains
    // in a handful of slices) cannot fall between samples.
    let host = storm_timeline(2, 1);
    let timeline = host.timeline().expect("sampling is enabled");
    // Samples survive the warmup/measured reset, so they cover exactly
    // the measured slices.
    assert_eq!(timeline.len() as u64, MEASURED);
    assert_eq!(timeline.series(), ConsolidatedHost::TIMELINE_SERIES);

    let json = timeline.export_chrome_counters();
    assert!(json.starts_with("{\"traceEvents\":[\n"));
    let counters = timeline.len() * timeline.series().len();
    assert_eq!(json.matches("\"ph\":\"C\"").count(), counters);
    assert_eq!(json.matches("\"args\":{\"value\":").count(), counters);
    let mut depth = 0i64;
    for ch in json.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in exported counters");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "exported counters must balance their brackets");

    let csv = timeline.export_csv();
    let mut lines = csv.lines();
    assert_eq!(
        lines.next(),
        Some("ts,directory_lines,dram_queue_offchip,dram_queue_diestacked,ntlb_hit_rate_bp,shootdown_targets,dirty_pages")
    );
    assert_eq!(lines.count(), timeline.len());

    // The gauges actually move: the migration drains its dirty pages
    // inside the measured window, the aggressor's software shootdowns
    // land targets, and the nested-TLB hit rate stays a valid ratio.
    let dirty = series_index("dirty_pages");
    let targets = series_index("shootdown_targets");
    let ntlb = series_index("ntlb_hit_rate_bp");
    assert!(timeline.samples().iter().any(|(_, v)| v[dirty] > 0));
    assert!(timeline.samples().iter().any(|(_, v)| v[targets] > 0));
    assert!(timeline.samples().iter().all(|(_, v)| v[ntlb] <= 10_000));
}

fn series_index(name: &str) -> usize {
    ConsolidatedHost::TIMELINE_SERIES
        .iter()
        .position(|s| *s == name)
        .expect("a declared timeline series")
}

#[test]
fn scenario_timeline_run_is_host_only_and_samples() {
    let scenario = find("migration_storm").expect("migration_storm is registered");
    let timeline = scenario
        .timeline_run(&Params::new(), Scale::Smoke)
        .expect("host scenarios sample timelines")
        .expect("smoke timeline run succeeds");
    assert!(!timeline.is_empty());
    assert_eq!(timeline.series(), ConsolidatedHost::TIMELINE_SERIES);
    // The figure scenarios have no host commit barrier to sample at.
    assert!(find("fig9")
        .expect("fig9 is registered")
        .timeline_run(&Params::new(), Scale::Smoke)
        .is_none());
}

// ---------------------------------------------------------------------------
// Per-remap causal attribution
// ---------------------------------------------------------------------------

#[test]
fn causal_attribution_reconciles_exactly_with_interference_counters() {
    let mut host = ConsolidatedHost::new(storm_config(2)).expect("storm config is valid");
    let report = host.run(WARMUP, MEASURED);
    let mut victim_cycles = 0u64;
    let mut targets = 0u64;
    for (slot, vm) in report.per_vm.iter().enumerate() {
        let total = vm.causal.total();
        // The ledger charges victim cycles at exactly the two sites that
        // increment `inflicted_cycles`, so the totals reconcile to the
        // cycle, not approximately.
        assert_eq!(
            total.victim_cycles, vm.interference.inflicted_cycles,
            "vm{slot}: attributed victim cycles must equal inflicted cycles"
        );
        assert_eq!(
            total.targets,
            vm.numa.local_coherence_targets + vm.numa.remote_coherence_targets,
            "vm{slot}: attributed targets must equal the NUMA coherence-target count"
        );
        victim_cycles += total.victim_cycles;
        targets += total.targets;
    }
    assert!(victim_cycles > 0, "a software storm must inflict cycles");
    // The host-level ledger is the merge of the per-VM ledgers; RemapIds
    // carry their slot, so merging never collides.
    let host_total = report.host.causal.total();
    assert_eq!(host_total.victim_cycles, victim_cycles);
    assert_eq!(host_total.targets, targets);
    // The ranking surfaces real remaps: the top entry's cost is positive
    // and no larger than the whole.
    let top = report.host.causal.top_by_victim_cycles(1);
    let (_, cost) = top.first().expect("the storm charged at least one remap");
    assert!(cost.victim_cycles > 0);
    assert!(cost.victim_cycles <= host_total.victim_cycles);
}

#[test]
fn scenario_rows_carry_attribution_columns() {
    let scenario = find("multivm").expect("multivm is registered");
    let report = scenario
        .run(&Params::new(), Scale::Smoke)
        .expect("smoke run succeeds");
    for row in &report.rows {
        for key in [
            "attr_remaps",
            "attr_victim_cycles",
            "attr_top_victim_cycles",
        ] {
            assert!(
                row.number(key).is_some(),
                "{}/{}: row must carry {key}",
                row.label(),
                row.mechanism()
            );
        }
        assert!(row.get("attr_top_remap").is_some());
        let share = row
            .number("attr_top_share")
            .expect("rows carry attr_top_share");
        assert!((0.0..=1.0).contains(&share));
        assert!(
            row.number("attr_top_victim_cycles") <= row.number("attr_victim_cycles"),
            "the top remap cannot exceed the total"
        );
    }
    // Software rows attribute real disruption to real remaps.
    let software = report
        .find("severe", "Software")
        .expect("the severe software row exists");
    assert!(software.number("attr_victim_cycles").unwrap_or(0.0) > 0.0);
    match software.get("attr_top_remap") {
        Some(Metric::Text(id)) => assert!(
            id.starts_with("vm"),
            "the top remap must be a real RemapId, got `{id}`"
        ),
        other => panic!("attr_top_remap must be a textual remap id, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// The diff observatory
// ---------------------------------------------------------------------------

#[test]
fn diff_observatory_passes_self_diffs_and_fails_gated_perturbation() {
    let scenario = find("multivm").expect("multivm is registered");
    let report = scenario
        .run(&Params::new(), Scale::Smoke)
        .expect("smoke run succeeds");
    // Diff exactly what `scenarios run --json` writes, trailing
    // environment-metadata record included.
    let body = append_meta_record(&report.to_json(), &bench_meta_json(Some(2)));
    let gated = scenario.gated_metrics();

    let self_diff = diff_json(&body, &body, gated, DiffOptions::default()).expect("body parses");
    assert!(self_diff.passed(), "a self-diff must always pass");
    assert!(self_diff.missing.is_empty() && self_diff.extra.is_empty());

    // Perturb one gated metric far past any tolerance: the observatory
    // must flag exactly that metric and fail.
    let value = report.rows[0]
        .number("victim_slowdown_vs_ideal")
        .expect("multivm rows carry the gated metric");
    let perturbed = body.replacen(
        &format!("\"victim_slowdown_vs_ideal\":{value:.6}"),
        &format!("\"victim_slowdown_vs_ideal\":{:.6}", value * 10.0),
        1,
    );
    assert_ne!(perturbed, body, "the perturbation must land");
    let drifted = diff_json(&body, &perturbed, gated, DiffOptions::default()).expect("body parses");
    assert!(!drifted.passed());
    assert_eq!(drifted.regressions(), 1);
    assert!(drifted.format_text().contains("REGRESSED"));

    // Dropping a row from run B fails closed.
    let truncated = {
        let mut shorter = report.clone();
        shorter.rows.pop();
        shorter.to_json()
    };
    let missing = diff_json(&body, &truncated, gated, DiffOptions::default()).expect("parses");
    assert!(!missing.passed());
    assert_eq!(missing.missing.len(), 1);
}
