//! The observability subsystem's contracts:
//!
//! 1. **Zero perturbation** — model metrics are byte-identical with
//!    tracing on vs off, at every worker thread count.  The trace sink
//!    and histograms are keyed entirely to simulated cycles; turning them
//!    on must never move a simulated number.
//! 2. **Chrome trace export round-trips** — the exported document is
//!    well-formed JSON and every track's spans carry monotonically
//!    non-decreasing timestamps (each track maps to a cycle counter that
//!    only moves forward).
//! 3. **The expected spans exist** — a traced migration run records the
//!    full lifecycle: scheduler slices, remap fan-outs, per-target
//!    invalidation acks, pre-copy rounds and the stop-and-copy burst.

use std::collections::BTreeMap;

use hatric_host::scenario::{find, Params, Scale};
use hatric_host::{
    CoherenceMechanism, ConsolidatedHost, HostConfig, HostEvent, MigrationParams, SchedPolicy,
    VmSpec,
};

const WARMUP: u64 = 60;
const MEASURED: u64 = 160;

/// A small consolidated host that exercises every traced path: a
/// paging-heavy aggressor (remap + shootdown spans), victims (scheduler
/// interference) and a live migration starting inside the measured
/// window (pre-copy rounds + stop-and-copy).
fn storm_config(threads: usize) -> HostConfig {
    HostConfig::scaled(4, 512)
        .with_mechanism(CoherenceMechanism::Software)
        .with_sched(SchedPolicy::RoundRobin)
        .with_threads(threads)
        .with_vm(VmSpec::aggressor(2, 192))
        .with_vm(VmSpec::victim(2, 128))
        .with_event(HostEvent::Migrate(MigrationParams::at(1, WARMUP + 20)))
}

fn run_report(threads: usize, tracing: bool) -> String {
    let mut host = ConsolidatedHost::new(storm_config(threads)).expect("storm config is valid");
    if tracing {
        host.enable_tracing(1 << 14);
    }
    let report = host.run(WARMUP, MEASURED);
    format!("{report:?}")
}

#[test]
fn model_metrics_are_identical_with_tracing_on_or_off_at_any_thread_count() {
    let baseline = run_report(1, false);
    for threads in [1usize, 2, 4] {
        for tracing in [false, true] {
            let report = run_report(threads, tracing);
            assert_eq!(
                report, baseline,
                "threads={threads} tracing={tracing}: model metrics diverged from \
                 threads=1 tracing=off"
            );
        }
    }
}

fn traced_host() -> ConsolidatedHost {
    let mut host = ConsolidatedHost::new(storm_config(2)).expect("storm config is valid");
    host.enable_tracing(1 << 14);
    host.run(WARMUP, MEASURED);
    host
}

#[test]
fn traced_run_records_the_full_lifecycle() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    assert!(!sink.is_empty(), "a traced storm run must record spans");
    let names: Vec<&str> = sink.events().map(|e| e.name).collect();
    for expected in [
        "slice",
        "remap_software",
        "inval_target",
        "precopy_round",
        "stop_and_copy",
    ] {
        assert!(
            names.contains(&expected),
            "trace must contain a `{expected}` span (got: {:?})",
            {
                let mut distinct: Vec<&str> = names.clone();
                distinct.sort_unstable();
                distinct.dedup();
                distinct
            }
        );
    }
    // The warmup/measured boundary clears the sink, so every span sits in
    // the measured phase — no timestamp can predate the counter reset.
    let max_dur_end = sink.events().map(|e| e.ts + e.dur).max().unwrap_or(0);
    assert!(max_dur_end > 0, "measured-phase spans must have extent");
}

#[test]
fn trace_timestamps_are_monotone_within_each_track() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    let mut last_ts: BTreeMap<u32, u64> = BTreeMap::new();
    for event in sink.events() {
        let prev = last_ts.entry(event.track).or_insert(0);
        assert!(
            event.ts >= *prev,
            "track {} went backwards: span `{}` at ts {} after ts {}",
            event.track,
            event.name,
            event.ts,
            prev
        );
        *prev = event.ts;
    }
    assert!(last_ts.len() > 1, "spans must land on more than one track");
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let host = traced_host();
    let sink = host.platform().trace_sink().expect("tracing is enabled");
    let json = host.export_trace().expect("tracing is enabled");
    assert!(json.starts_with("{\"traceEvents\":[\n"));
    assert!(json.ends_with("\n]}\n"));
    // Structural well-formedness: brackets and braces balance, and never
    // go negative (the minimal-JSON writer emits no strings containing
    // either, so plain counting is exact).
    let mut depth = 0i64;
    for ch in json.chars() {
        match ch {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close in exported trace");
            }
            _ => {}
        }
    }
    assert_eq!(depth, 0, "exported trace must balance its brackets");
    // One complete-event record per held span.
    assert_eq!(json.matches("\"ph\":\"X\"").count(), sink.len());
    // Every record carries the fixed Chrome fields.
    assert_eq!(json.matches("\"pid\":0").count(), sink.len());
}

#[test]
fn scenario_trace_run_emits_migration_spans() {
    let scenario = find("migration_storm").expect("migration_storm is registered");
    let traced = scenario
        .trace_run(&Params::new(), Scale::Smoke)
        .expect("migration_storm supports tracing")
        .expect("smoke trace run succeeds");
    for expected in ["remap_software", "precopy_round", "stop_and_copy", "slice"] {
        assert!(
            traced.contains(&format!("\"name\":\"{expected}\"")),
            "migration_storm trace must contain `{expected}` spans"
        );
    }
    // fig9/xen run on the single-VM System and advertise no traced
    // configuration rather than writing an empty file.
    assert!(find("fig9")
        .expect("fig9 is registered")
        .trace_run(&Params::new(), Scale::Smoke)
        .is_none());
}

#[test]
fn report_rows_carry_latency_percentiles() {
    let scenario = find("multivm").expect("multivm is registered");
    let report = scenario
        .run(&Params::new(), Scale::Smoke)
        .expect("smoke run succeeds");
    for row in &report.rows {
        for key in [
            "walk_p50",
            "walk_p99",
            "shootdown_p50",
            "shootdown_p99",
            "dram_queue_p50",
            "dram_queue_p99",
        ] {
            assert!(
                row.number(key).is_some(),
                "{}/{}: row must carry {key}",
                row.label(),
                row.mechanism()
            );
        }
        assert!(
            row.number("walk_p99") >= row.number("walk_p50"),
            "p99 can never undercut p50"
        );
        assert!(
            row.number("walk_p50").unwrap_or(0.0) > 0.0,
            "every VM performs nested walks, so the median is positive"
        );
    }
}
